//! The kernel's software timer queue (Figure 1: "Timers / Clock
//! services").
//!
//! A small-memory kernel keeps pending timeouts in a *delta queue*: a
//! list ordered by expiry where each node stores the time delta to its
//! predecessor, so the head's delta is the only value the tick handler
//! decrements and reprogramming the one-shot hardware timer needs only
//! the head. This module implements that structure (with absolute
//! times internally, deltas derivable) with stable FIFO order among
//! equal expiries, matching the determinism guarantees of the rest of
//! the simulator.

use std::collections::VecDeque;

use emeralds_sim::Time;

/// A pending timer entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

/// A delta-style timer queue: sorted singly-linked order, O(n) insert,
/// O(1) expiry pop — the right trade for the tens of timers a
/// small-memory system arms. The ring buffer keeps the expiry pop O(1)
/// for real (`Vec::remove(0)` would shift the whole queue every tick).
#[derive(Clone, Debug)]
pub struct TimerQueue<E> {
    entries: VecDeque<Entry<E>>,
    seq: u64,
    /// Lifetime statistics: how many nodes insertions walked, for the
    /// overhead ledger and tests.
    pub insert_walks: u64,
    pub inserts: u64,
    pub expirations: u64,
}

impl<E> TimerQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TimerQueue {
            entries: VecDeque::new(),
            seq: 0,
            insert_walks: 0,
            inserts: 0,
            expirations: 0,
        }
    }

    /// Arms a timer at `at`. Returns the number of nodes walked to
    /// find the position (the cost driver of a delta queue).
    pub fn arm(&mut self, at: Time, payload: E) -> usize {
        let seq = self.seq;
        self.seq += 1;
        // Walk from the head; FIFO among equal expiries.
        let pos = self
            .entries
            .iter()
            .position(|e| e.at > at)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, Entry { at, seq, payload });
        self.inserts += 1;
        self.insert_walks += pos as u64;
        pos
    }

    /// The head expiry — what the hardware one-shot gets programmed
    /// to.
    pub fn next_expiry(&self) -> Option<Time> {
        self.entries.front().map(|e| e.at)
    }

    /// Pops the head if due at or before `now` — O(1) on the deque.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        if self.entries.front().map(|e| e.at <= now) == Some(true) {
            let e = self.entries.pop_front().expect("front checked above");
            self.expirations += 1;
            Some((e.at, e.payload))
        } else {
            None
        }
    }

    /// Delta of the head relative to `now` (what a tick decrements),
    /// zero when already due.
    pub fn head_delta(&self, now: Time) -> Option<emeralds_sim::Duration> {
        self.entries.front().map(|e| e.at.saturating_since(now))
    }

    /// Cancels all entries matching `pred`; returns how many.
    pub fn cancel(&mut self, mut pred: impl FnMut(&E) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(&e.payload));
        before - self.entries.len()
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<E> Default for TimerQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emeralds_sim::Duration;

    #[test]
    fn pops_in_time_order_fifo_on_ties() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(5), 'b');
        q.arm(Time::from_us(1), 'a');
        q.arm(Time::from_us(5), 'c');
        assert_eq!(q.next_expiry(), Some(Time::from_us(1)));
        let order: Vec<char> =
            std::iter::from_fn(|| q.pop_due(Time::from_us(10)).map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.expirations, 3);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(10), 1);
        assert_eq!(q.pop_due(Time::from_us(9)), None);
        assert_eq!(q.pop_due(Time::from_us(10)), Some((Time::from_us(10), 1)));
    }

    #[test]
    fn insert_walk_counts_reflect_position() {
        let mut q = TimerQueue::new();
        assert_eq!(q.arm(Time::from_us(10), 0), 0);
        assert_eq!(q.arm(Time::from_us(30), 1), 1);
        assert_eq!(q.arm(Time::from_us(20), 2), 1);
        assert_eq!(q.arm(Time::from_us(5), 3), 0);
        assert_eq!(q.inserts, 4);
        assert_eq!(q.insert_walks, 2);
    }

    #[test]
    fn head_delta_and_cancel() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(100), 7);
        q.arm(Time::from_us(200), 8);
        assert_eq!(q.head_delta(Time::from_us(40)), Some(Duration::from_us(60)));
        assert_eq!(q.cancel(|&v| v == 7), 1);
        assert_eq!(q.next_expiry(), Some(Time::from_us(200)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn overdue_head_has_zero_delta() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(10), 0);
        assert_eq!(q.head_delta(Time::from_us(50)), Some(Duration::ZERO));
    }
}
