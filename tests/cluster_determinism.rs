//! Determinism pins for the parallel cluster executive.
//!
//! The conservative-lookahead engine promises that host threading is
//! *invisible*: the same cluster advanced with 1, 4, or
//! `available_parallelism` workers produces bit-for-bit identical
//! per-node event traces and identical rolled-up metrics. These tests
//! pin that promise, plus the degenerate end of it: a single-node
//! cluster (epoch-split execution) must match a plain
//! `Kernel::run_until` over the same horizon.
//!
//! The comparison set defaults to 4 and `available_parallelism`
//! workers (against a 1-worker base) and can be extended through the
//! `EMERALDS_WORKERS` environment variable — a comma-separated list of
//! extra counts — which CI's determinism matrix uses to pin parity at
//! the counts its runners actually have.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use emeralds::core::kernel::{Kernel, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::SchedPolicy;
use emeralds::faults::FaultPlan;
use emeralds::fieldbus::{addressed_tag, Cluster};
use emeralds::sim::{Duration, IrqLine, MboxId, NodeId, SimRng, StateId, Time};

const NIC_IRQ: IrqLine = IrqLine(2);

fn hash_of(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Worker counts to compare against the 1-worker base: 4 and the
/// host's parallelism, plus anything listed in `EMERALDS_WORKERS`
/// (comma-separated).
fn worker_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![4, host];
    if let Ok(extra) = std::env::var("EMERALDS_WORKERS") {
        counts.extend(
            extra
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok()),
        );
    }
    counts.retain(|&w| w >= 1);
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// A traced node that sends an addressed frame on a jittered period,
/// drains its RX mailbox, and runs filler compute.
fn traced_node(i: usize, dst: NodeId, rng: &mut SimRng) -> (Kernel, MboxId, MboxId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![1],
        },
        record_trace: true,
        ..KernelConfig::default()
    });
    let p = b.add_process(format!("node{i}"));
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(16);
    b.board_mut().add_nic("can", NIC_IRQ);
    b.add_periodic_task(
        p,
        "tx",
        Duration::from_us(rng.int_in(4_000, 7_000)),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(rng.int_in(100, 300))),
            Action::SendMbox {
                mbox: tx,
                bytes: 8,
                tag: addressed_tag(Some(dst), i as u32),
            },
        ]),
    );
    b.add_periodic_task(
        p,
        "filler",
        Duration::from_us(rng.int_in(900, 1_500)),
        Script::compute_only(Duration::from_us(rng.int_in(30, 80))),
    );
    b.add_driver_task(
        p,
        "nicdrv",
        Duration::from_ms(2),
        Script::looping(vec![
            Action::RecvMbox(rx),
            Action::Compute(Duration::from_us(40)),
        ]),
    );
    (b.build(), tx, rx)
}

/// A 6-node ring cluster with tracing on.
fn ring_cluster(workers: usize) -> Cluster {
    const N: usize = 6;
    let mut rng = SimRng::seeded(0xD37);
    let mut c = Cluster::new(1_000_000).with_workers(workers);
    for i in 0..N {
        let mut nrng = rng.derive(i as u64);
        let dst = NodeId(((i + 1) % N) as u32);
        let (k, tx, rx) = traced_node(i, dst, &mut nrng);
        c.add_node(format!("node{i}"), k, tx, rx, NIC_IRQ, (i + 1) as u32);
    }
    c
}

#[test]
fn traces_and_metrics_identical_across_worker_counts() {
    let horizon = Time::from_ms(80);
    let mut base = ring_cluster(1);
    base.run_until(horizon);
    let base_hashes: Vec<u64> = base
        .nodes()
        .iter()
        .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
        .collect();
    // Real traffic flowed, so the hashes pin something nontrivial.
    assert!(base.stats().frames_delivered > 20, "{:?}", base.stats());
    assert!(base.metrics().jobs_completed > 100);

    for workers in worker_counts() {
        let mut c = ring_cluster(workers);
        c.run_until(horizon);
        let hashes: Vec<u64> = c
            .nodes()
            .iter()
            .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
            .collect();
        assert_eq!(
            hashes, base_hashes,
            "trace hashes diverged at workers={workers}"
        );
        assert_eq!(
            c.metrics(),
            base.metrics(),
            "metrics diverged at workers={workers}"
        );
        assert_eq!(
            c.stats(),
            base.stats(),
            "bus stats diverged at workers={workers}"
        );
    }
}

/// Fault injection must not weaken the invisibility promise: the same
/// fault seed drives the same corrupted grants, outages, and babble
/// bursts at every worker count, so traces, metrics, bus stats, and
/// per-node NIC stats stay bit-for-bit identical.
#[test]
fn faulted_runs_identical_across_worker_counts() {
    let horizon = Time::from_ms(80);
    for fault_seed in [0xFA11u64, 0x0DDB] {
        let plan = FaultPlan::random(fault_seed, 6, horizon, 0.05, 0.5, 0.5);
        assert!(!plan.is_empty(), "seed {fault_seed:#x} injected nothing");

        let run = |workers: usize| {
            let mut c = ring_cluster(workers);
            c.set_fault_plan(&plan);
            c.run_until(horizon);
            let hashes: Vec<u64> = c
                .nodes()
                .iter()
                .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
                .collect();
            let node_stats: Vec<_> = c.nodes().iter().map(|n| n.stats.clone()).collect();
            (hashes, c.metrics(), *c.stats(), node_stats)
        };

        let base = run(1);
        // The plan actually bit: the error machinery left evidence.
        assert!(
            base.2.error_frames > 0 || base.2.frames_lost_offline > 0,
            "seed {fault_seed:#x} left no fault signal: {:?}",
            base.2
        );
        for workers in worker_counts() {
            let other = run(workers);
            assert_eq!(
                other.0, base.0,
                "trace hashes diverged at workers={workers}, seed {fault_seed:#x}"
            );
            assert_eq!(
                other.1, base.1,
                "metrics diverged at workers={workers}, seed {fault_seed:#x}"
            );
            assert_eq!(
                other.2, base.2,
                "bus stats diverged at workers={workers}, seed {fault_seed:#x}"
            );
            assert_eq!(
                other.3, base.3,
                "node stats diverged at workers={workers}, seed {fault_seed:#x}"
            );
        }
    }
}

/// A traced node that both publishes a state-message variable (shipped
/// to its ring successor over a `link_state` channel) and polls the
/// replica its predecessor feeds, recording data age on every read.
fn state_traced_node(i: usize, rng: &mut SimRng) -> (Kernel, MboxId, MboxId, StateId, StateId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![1],
        },
        record_trace: true,
        ..KernelConfig::default()
    });
    let p = b.add_process(format!("node{i}"));
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(16);
    b.board_mut().add_nic("can", NIC_IRQ);
    let tid = b.add_periodic_task(
        p,
        "pub",
        Duration::from_us(rng.int_in(4_000, 7_000)),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(rng.int_in(100, 300))),
            Action::StateWrite {
                var: StateId(0),
                value: Operand::Const(i as u32),
            },
        ]),
    );
    let wvar = b.add_state_msg(tid, 8, 3, &[]);
    assert_eq!(wvar, StateId(0));
    let rvar = b.add_state_replica(p, 8, 3, &[]);
    b.add_periodic_task(
        p,
        "law",
        Duration::from_us(rng.int_in(8_000, 12_000)),
        Script::periodic(vec![
            Action::StateRead(rvar),
            Action::Compute(Duration::from_us(rng.int_in(200, 500))),
        ]),
    );
    b.add_periodic_task(
        p,
        "filler",
        Duration::from_us(rng.int_in(900, 1_500)),
        Script::compute_only(Duration::from_us(rng.int_in(30, 80))),
    );
    (b.build(), tx, rx, wvar, rvar)
}

/// A 6-node state-linked ring with tracing on.
fn state_ring_cluster(workers: usize) -> Cluster {
    const N: usize = 6;
    let mut rng = SimRng::seeded(0x57A13);
    let mut c = Cluster::new(1_000_000).with_workers(workers);
    let mut vars = Vec::new();
    for i in 0..N {
        let mut nrng = rng.derive(i as u64);
        let (k, tx, rx, wvar, rvar) = state_traced_node(i, &mut nrng);
        c.add_node(format!("node{i}"), k, tx, rx, NIC_IRQ, (i + 1) as u32);
        vars.push((wvar, rvar));
    }
    for i in 0..N {
        let dst = (i + 1) % N;
        c.link_state(
            NodeId(i as u32),
            vars[i].0,
            NodeId(dst as u32),
            vars[dst].1,
            (10 + i) as u32,
            8,
        );
    }
    c
}

/// The staleness instrumentation must be worker-invisible too: the
/// same faulted, state-linked ring produces bit-for-bit identical data
/// age histograms, state-frame stats (overwrites, in-flight), and
/// traces at 1, 4, and `available_parallelism` workers.
#[test]
fn staleness_metrics_identical_across_worker_counts() {
    let horizon = Time::from_ms(80);
    let plan = FaultPlan::random(0xA6E, 6, horizon, 0.04, 0.3, 0.3);
    assert!(!plan.is_empty());

    let run = |workers: usize| {
        let mut c = state_ring_cluster(workers);
        c.set_fault_plan(&plan);
        c.run_until(horizon);
        let hashes: Vec<u64> = c
            .nodes()
            .iter()
            .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
            .collect();
        (hashes, c.metrics(), *c.stats())
    };

    let base = run(1);
    // The pin is nontrivial: ages were recorded and state frames flowed.
    assert!(base.1.state_age.count() > 0, "no data age recorded");
    assert!(base.2.frames_delivered > 0, "no state frames delivered");
    assert_eq!(
        base.2.frames_sent,
        base.2.frames_delivered + base.2.frames_dropped + base.2.frames_in_flight,
        "frame accounting leak: {:?}",
        base.2
    );

    for workers in worker_counts() {
        let other = run(workers);
        assert_eq!(
            other.0, base.0,
            "trace hashes diverged at workers={workers}"
        );
        assert_eq!(
            other.1, base.1,
            "metrics (incl. staleness) diverged at workers={workers}"
        );
        assert_eq!(other.2, base.2, "bus stats diverged at workers={workers}");
    }
}

/// A kernel with no bus traffic, traced, for the N=1 parity check. Bus
/// traffic is excluded on purpose: the cluster's NIC harvest drains
/// the TX mailbox, which a plain kernel run has no analogue for. The
/// mailboxes and NIC exist (the cluster wiring needs them) but no task
/// touches them.
fn local_only_kernel() -> (Kernel, MboxId, MboxId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![1],
        },
        record_trace: true,
        ..KernelConfig::default()
    });
    let p = b.add_process("solo");
    let tx = b.add_mailbox(4);
    let rx = b.add_mailbox(4);
    b.board_mut().add_nic("can", NIC_IRQ);
    b.add_periodic_task(
        p,
        "fast",
        Duration::from_us(1_100),
        Script::compute_only(Duration::from_us(90)),
    );
    b.add_periodic_task(
        p,
        "law",
        Duration::from_ms(5),
        Script::compute_only(Duration::from_us(700)),
    );
    b.add_periodic_task(
        p,
        "slow",
        Duration::from_ms(20),
        Script::compute_only(Duration::from_ms(2)),
    );
    (b.build(), tx, rx)
}

#[test]
fn single_node_cluster_matches_plain_kernel() {
    let horizon = Time::from_ms(60);
    let (mut plain, _, _) = local_only_kernel();
    plain.run_until(horizon);

    let mut c = Cluster::new(1_000_000);
    let (k, tx, rx) = local_only_kernel();
    c.add_node("solo", k, tx, rx, NIC_IRQ, 1);
    c.run_until(horizon);

    // Epoch-split execution of the same kernel: schedule, metrics, and
    // trace must agree exactly with the single uninterrupted run.
    let node = c.node(NodeId(0));
    assert_eq!(node.kernel.metrics(), plain.metrics());
    assert_eq!(
        hash_of(&node.kernel.trace().to_jsonl()),
        hash_of(&plain.trace().to_jsonl())
    );
    assert_eq!(c.metrics().deadline_misses, plain.metrics().deadline_misses);
    assert_eq!(c.stats().frames_sent, 0);
}

/// Adaptive lookahead (the default) must be simulation-invisible:
/// disabling it may only change barrier counts, never traces, metrics,
/// or bus statistics.
#[test]
fn adaptive_and_fixed_cadence_runs_bit_identical() {
    let horizon = Time::from_ms(80);
    let run = |adaptive: bool| {
        let mut c = ring_cluster(2);
        c.set_adaptive(adaptive);
        c.run_until(horizon);
        let hashes: Vec<u64> = c
            .nodes()
            .iter()
            .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
            .collect();
        (hashes, c.metrics(), *c.stats(), c.exec_stats().barriers)
    };
    let fixed = run(false);
    let adaptive = run(true);
    assert!(fixed.2.frames_delivered > 20, "ring carried no traffic");
    assert_eq!(adaptive.0, fixed.0, "trace hashes diverged");
    assert_eq!(adaptive.1, fixed.1, "metrics diverged");
    assert_eq!(adaptive.2, fixed.2, "bus stats diverged");
    assert!(
        adaptive.3 <= fixed.3,
        "adaptive mode added barriers: {} > {}",
        adaptive.3,
        fixed.3
    );
}

/// Adaptive lookahead must stay simulation-invisible **under an
/// active fault plan**: a quiet-bus stretch may never leap past a
/// scheduled fault instant — a babble onset, a fail-stop window
/// boundary, or a bus-off recovery — or the fault lands on a different
/// barrier and the error machinery diverges. This pins bit-parity of
/// adaptive vs fixed cadence (traces, metrics, bus stats, per-node NIC
/// stats) across fault seeds, while still requiring the stretch to
/// collapse at least some barriers.
#[test]
fn adaptive_and_fixed_cadence_agree_under_faults() {
    let horizon = Time::from_ms(80);
    for fault_seed in [0xFA11u64, 0x0DDB, 0xBEEF] {
        let plan = FaultPlan::random(fault_seed, 6, horizon, 0.05, 0.5, 0.5);
        assert!(!plan.is_empty(), "seed {fault_seed:#x} injected nothing");
        let run = |adaptive: bool| {
            let mut c = ring_cluster(2);
            c.set_fault_plan(&plan);
            c.set_adaptive(adaptive);
            c.run_until(horizon);
            let hashes: Vec<u64> = c
                .nodes()
                .iter()
                .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
                .collect();
            let node_stats: Vec<_> = c.nodes().iter().map(|n| n.stats.clone()).collect();
            (
                hashes,
                c.metrics(),
                *c.stats(),
                node_stats,
                c.exec_stats().barriers,
            )
        };
        let fixed = run(false);
        let adaptive = run(true);
        assert!(
            fixed.2.error_frames > 0 || fixed.2.frames_lost_offline > 0,
            "seed {fault_seed:#x} left no fault signal: {:?}",
            fixed.2
        );
        assert_eq!(
            adaptive.0, fixed.0,
            "trace hashes diverged under seed {fault_seed:#x}"
        );
        assert_eq!(
            adaptive.1, fixed.1,
            "metrics diverged under seed {fault_seed:#x}"
        );
        assert_eq!(
            adaptive.2, fixed.2,
            "bus stats diverged under seed {fault_seed:#x}"
        );
        assert_eq!(
            adaptive.3, fixed.3,
            "node stats diverged under seed {fault_seed:#x}"
        );
        assert!(
            adaptive.4 <= fixed.4,
            "adaptive mode added barriers under faults: {} > {}",
            adaptive.4,
            fixed.4
        );
    }
}

/// A stretched epoch is truncated at the horizon: driving a quiet
/// cluster to a horizon on neither the lookahead grid nor any timer
/// expiry lands the cursor exactly there, and resuming to a further
/// horizon matches a single uninterrupted run. On this quiet bus the
/// stretch must also collapse barriers heavily vs fixed cadence.
#[test]
fn adaptive_stretch_truncates_at_horizon() {
    let mid = Time::from_us(13_317); // off-grid, off every period used
    let end = Time::from_ms(60);
    let build = || {
        let mut c = Cluster::new(1_000_000);
        let (k, tx, rx) = local_only_kernel();
        c.add_node("solo", k, tx, rx, NIC_IRQ, 1);
        c
    };
    let mut whole = build();
    whole.run_until(end);

    let mut split = build();
    split.run_until(mid);
    assert_eq!(split.now(), mid, "cursor overshot the truncated horizon");
    assert!(split.exec_stats().barriers >= 1);
    split.run_until(end);
    assert_eq!(split.now(), end);
    let (a, b) = (&split.node(NodeId(0)).kernel, &whole.node(NodeId(0)).kernel);
    assert_eq!(a.metrics(), b.metrics(), "metrics diverged across split");
    assert_eq!(
        hash_of(&a.trace().to_jsonl()),
        hash_of(&b.trace().to_jsonl()),
        "trace diverged across split"
    );

    let mut fixed = build();
    fixed.set_adaptive(false);
    fixed.run_until(end);
    assert!(
        whole.exec_stats().barriers * 2 <= fixed.exec_stats().barriers,
        "quiet-bus stretch collapsed too few barriers: {} vs {}",
        whole.exec_stats().barriers,
        fixed.exec_stats().barriers
    );
}

/// A node that posts one frame right at each job release (the timer
/// expiry adaptive stretches target), then idles most of its period.
fn sparse_tx_node(i: usize, dst: NodeId) -> (Kernel, MboxId, MboxId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![1],
        },
        record_trace: true,
        ..KernelConfig::default()
    });
    let p = b.add_process(format!("sparse{i}"));
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(16);
    b.board_mut().add_nic("can", NIC_IRQ);
    b.add_periodic_task(
        p,
        "tx",
        Duration::from_us(9_700 + 900 * i as u64),
        Script::periodic(vec![
            Action::SendMbox {
                mbox: tx,
                bytes: 8,
                tag: addressed_tag(Some(dst), i as u32),
            },
            Action::Compute(Duration::from_us(120)),
        ]),
    );
    b.add_driver_task(
        p,
        "nicdrv",
        Duration::from_ms(2),
        Script::looping(vec![
            Action::RecvMbox(rx),
            Action::Compute(Duration::from_us(40)),
        ]),
    );
    (b.build(), tx, rx)
}

/// Frames enqueued at the very instant a stretched epoch lands on (the
/// job-release expiry the stretch targeted) are harvested and
/// delivered bit-identically to a fixed-cadence run — and the long
/// idle gaps between sends must actually have been stretched across.
#[test]
fn tx_at_stretched_boundary_is_delivered_identically() {
    let horizon = Time::from_ms(60);
    let run = |adaptive: bool| {
        let mut c = Cluster::new(1_000_000).with_workers(2);
        c.set_adaptive(adaptive);
        for i in 0..2usize {
            let dst = NodeId(((i + 1) % 2) as u32);
            let (k, tx, rx) = sparse_tx_node(i, dst);
            c.add_node(format!("n{i}"), k, tx, rx, NIC_IRQ, (i + 1) as u32);
        }
        c.run_until(horizon);
        let hashes: Vec<u64> = c
            .nodes()
            .iter()
            .map(|n| hash_of(&n.kernel.trace().to_jsonl()))
            .collect();
        (hashes, c.metrics(), *c.stats(), c.exec_stats().barriers)
    };
    let fixed = run(false);
    let adaptive = run(true);
    // Every periodic send made it across in both modes.
    assert!(fixed.2.frames_delivered >= 10, "{:?}", fixed.2);
    assert_eq!(adaptive.0, fixed.0, "trace hashes diverged");
    assert_eq!(adaptive.1, fixed.1, "metrics diverged");
    assert_eq!(adaptive.2, fixed.2, "bus stats diverged");
    assert!(
        adaptive.3 * 2 <= fixed.3,
        "sparse traffic should stretch epochs: {} vs {} barriers",
        adaptive.3,
        fixed.3
    );
}

#[test]
fn epoch_split_run_matches_single_call() {
    // Same cluster, horizon reached in one call vs many small calls
    // whose boundaries land on the (1 ms) lookahead grid.
    let mut whole = ring_cluster(2);
    whole.set_lookahead(Duration::from_ms(1));
    whole.run_until(Time::from_ms(48));

    let mut split = ring_cluster(2);
    split.set_lookahead(Duration::from_ms(1));
    for step in 1..=4 {
        split.run_until(Time::from_ms(step * 12));
    }
    assert_eq!(whole.metrics(), split.metrics());
    assert_eq!(whole.stats(), split.stats());
    for (a, b) in whole.nodes().iter().zip(split.nodes()) {
        assert_eq!(
            hash_of(&a.kernel.trace().to_jsonl()),
            hash_of(&b.kernel.trace().to_jsonl()),
            "node {}",
            a.name
        );
    }
}
