//! Region-based memory protection unit.
//!
//! EMERALDS provides "full memory protection for threads" (§3) on
//! MMU-less microcontrollers, which in practice means a small number of
//! base/size protection regions per process plus shared-memory windows
//! for IPC. This model checks every simulated access of an application
//! action against the owning process's regions.

use emeralds_sim::{ProcId, RegionId};

/// Access permissions on a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Perms {
    pub read: bool,
    pub write: bool,
    pub execute: bool,
}

impl Perms {
    /// Read/write data region.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-only region.
    pub const RO: Perms = Perms {
        read: true,
        write: false,
        execute: false,
    };
    /// Read/execute code region.
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        execute: true,
    };

    fn allows(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Execute => self.execute,
        }
    }
}

/// Kind of simulated memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    Execute,
}

/// One protection region.
#[derive(Clone, Debug)]
pub struct Region {
    pub id: RegionId,
    pub base: u64,
    pub size: u64,
    pub perms: Perms,
    /// Processes allowed to access the region. Shared-memory IPC adds
    /// more than one.
    sharers: Vec<ProcId>,
}

impl Region {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.size
    }

    fn shared_with(&self, proc: ProcId) -> bool {
        self.sharers.contains(&proc)
    }
}

/// A protection fault detected by the MPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpuFault {
    pub proc: ProcId,
    pub addr: u64,
    pub kind: AccessKind,
}

/// The memory protection unit: a table of regions.
#[derive(Clone, Debug, Default)]
pub struct Mpu {
    regions: Vec<Region>,
    next_id: u32,
}

impl Mpu {
    /// Creates an empty MPU.
    pub fn new() -> Self {
        Mpu::default()
    }

    /// Registers a region owned by `proc`. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or overlaps an existing region.
    pub fn add_region(&mut self, proc: ProcId, base: u64, size: u64, perms: Perms) -> RegionId {
        assert!(size > 0, "empty region");
        assert!(
            !self
                .regions
                .iter()
                .any(|r| base < r.base + r.size && r.base < base + size),
            "overlapping region"
        );
        let id = RegionId(self.next_id);
        self.next_id += 1;
        self.regions.push(Region {
            id,
            base,
            size,
            perms,
            sharers: vec![proc],
        });
        id
    }

    /// Grants `proc` access to an existing region (shared-memory IPC
    /// mapping).
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist.
    pub fn share(&mut self, region: RegionId, proc: ProcId) {
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.id == region)
            .expect("unknown region");
        if !r.sharers.contains(&proc) {
            r.sharers.push(proc);
        }
    }

    /// Checks an access; `Ok` if some region covering `addr` is shared
    /// with `proc` and permits `kind`.
    pub fn check(&self, proc: ProcId, addr: u64, kind: AccessKind) -> Result<(), MpuFault> {
        let ok = self
            .regions
            .iter()
            .any(|r| r.contains(addr) && r.shared_with(proc) && r.perms.allows(kind));
        if ok {
            Ok(())
        } else {
            Err(MpuFault { proc, addr, kind })
        }
    }

    /// The region covering `addr`, if any.
    pub fn region_at(&self, addr: u64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_can_access_with_perms() {
        let mut mpu = Mpu::new();
        let p = ProcId(0);
        mpu.add_region(p, 0x1000, 0x100, Perms::RW);
        assert!(mpu.check(p, 0x1000, AccessKind::Read).is_ok());
        assert!(mpu.check(p, 0x10ff, AccessKind::Write).is_ok());
        assert!(mpu.check(p, 0x1000, AccessKind::Execute).is_err());
    }

    #[test]
    fn out_of_region_faults() {
        let mut mpu = Mpu::new();
        let p = ProcId(0);
        mpu.add_region(p, 0x1000, 0x100, Perms::RW);
        let fault = mpu.check(p, 0x1100, AccessKind::Read).unwrap_err();
        assert_eq!(fault.addr, 0x1100);
        assert_eq!(fault.kind, AccessKind::Read);
    }

    #[test]
    fn foreign_process_faults_until_shared() {
        let mut mpu = Mpu::new();
        let owner = ProcId(0);
        let other = ProcId(1);
        let r = mpu.add_region(owner, 0x2000, 0x80, Perms::RW);
        assert!(mpu.check(other, 0x2000, AccessKind::Read).is_err());
        mpu.share(r, other);
        assert!(mpu.check(other, 0x2000, AccessKind::Read).is_ok());
    }

    #[test]
    fn read_only_blocks_writes() {
        let mut mpu = Mpu::new();
        let p = ProcId(0);
        mpu.add_region(p, 0, 16, Perms::RO);
        assert!(mpu.check(p, 8, AccessKind::Read).is_ok());
        assert!(mpu.check(p, 8, AccessKind::Write).is_err());
    }

    #[test]
    #[should_panic(expected = "overlapping region")]
    fn overlap_rejected() {
        let mut mpu = Mpu::new();
        mpu.add_region(ProcId(0), 0x1000, 0x100, Perms::RW);
        mpu.add_region(ProcId(1), 0x10f0, 0x100, Perms::RW);
    }

    #[test]
    fn region_lookup() {
        let mut mpu = Mpu::new();
        let id = mpu.add_region(ProcId(0), 0x3000, 0x40, Perms::RX);
        assert_eq!(mpu.region_at(0x3020).unwrap().id, id);
        assert!(mpu.region_at(0x4000).is_none());
        assert_eq!(mpu.region_count(), 1);
    }
}
