//! The CPU's virtual clock.

use emeralds_sim::{Duration, Time};

/// A monotonically advancing virtual clock.
///
/// The kernel advances the clock for every charge (overhead) and every
/// slice of application computation; nothing else moves time, so the
/// sum of the accounting ledger always equals `now() - boot`.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Time,
}

impl Clock {
    /// A clock at boot time.
    pub fn new() -> Self {
        Clock { now: Time::ZERO }
    }

    /// The current instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances by `d`.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Advances to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past; the simulation must never rewind.
    pub fn advance_to(&mut self, t: Time) {
        assert!(t >= self.now, "clock cannot run backwards");
        self.now = t;
    }

    /// Reads the clock with the resolution of the paper's 5 MHz
    /// measurement timer (200 ns granularity).
    pub fn read_coarse(&self) -> Time {
        self.now.quantize_to_hz(5_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = Clock::new();
        c.advance(Duration::from_us(3));
        assert_eq!(c.now(), Time::from_us(3));
        c.advance_to(Time::from_us(10));
        assert_eq!(c.now(), Time::from_us(10));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn cannot_rewind() {
        let mut c = Clock::new();
        c.advance_to(Time::from_us(5));
        c.advance_to(Time::from_us(4));
    }

    #[test]
    fn coarse_read_quantizes_to_200ns() {
        let mut c = Clock::new();
        c.advance(Duration::from_ns(999));
        assert_eq!(c.read_coarse(), Time::from_ns(800));
    }
}
