//! Experiment T1 — Table 1: scheduler run-time overheads.
//!
//! Two views are produced:
//!
//! 1. the *closed forms* of Table 1 evaluated over n (what the paper
//!    prints), and
//! 2. *live measurements*: the actual charges returned by the real
//!    queue implementations when driven through worst-case
//!    block/select/unblock operations — demonstrating that the paper's
//!    formulas are the worst case of what the code does.

use emeralds_core::sched::{EdfQueue, RmHeap, RmQueue};
use emeralds_core::script::Script;
use emeralds_core::tcb::{BlockReason, QueueAssign, Tcb, TcbTable, ThreadState, Timing};
use emeralds_hal::CostModel;
use emeralds_sim::{Duration, ProcId, ThreadId, Time};

/// One Table 1 row set at a given `n`.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub n: usize,
    /// `(t_b, t_u, t_s)` for EDF-queue, RM-queue, RM-heap — the
    /// closed-form worst cases (µs).
    pub formula: [[f64; 3]; 3],
    /// The same quantities measured live from the implementations
    /// (µs).
    pub measured: [[f64; 3]; 3],
}

/// Builds a TCB table with `n` ready tasks (rm_prio = id, deadlines
/// descending so the EDF worst case walks everything).
pub fn ready_tasks(n: usize, queue: QueueAssign) -> TcbTable {
    let mut tcbs = TcbTable::new();
    for i in 0..n {
        let mut t = Tcb::new(
            ThreadId(i as u32),
            ProcId(0),
            format!("t{i}"),
            Timing::Periodic {
                period: Duration::from_ms(10 + i as u64),
                deadline: Duration::from_ms(10 + i as u64),
                phase: Duration::ZERO,
            },
            Script::compute_only(Duration::from_ms(1)),
            i as u32,
            queue,
        );
        t.state = ThreadState::Ready;
        t.abs_deadline = Time::from_ms(1000 - i as u64);
        tcbs.insert(t);
    }
    tcbs
}

/// Measures the worst-case `(t_b, t_u, t_s)` of each implementation at
/// `n` tasks.
pub fn measure(n: usize, cost: &CostModel) -> Table1Row {
    let us = |d: Duration| d.as_us_f64();

    // --- EDF: block/unblock O(1); select walks all n. ---
    let tcbs = ready_tasks(n, QueueAssign::Dp(0));
    let mut edf = EdfQueue::new();
    for i in 0..n {
        edf.add(ThreadId(i as u32), &tcbs);
    }
    let mut tcbs_edf = tcbs.clone();
    let (_, edf_ts) = edf.select(&tcbs_edf, cost);
    tcbs_edf.get_mut(ThreadId(0)).state = ThreadState::Blocked(BlockReason::EndOfJob);
    let edf_tb = edf.on_block(ThreadId(0), cost);
    tcbs_edf.get_mut(ThreadId(0)).state = ThreadState::Ready;
    let edf_tu = edf.on_unblock(ThreadId(0), cost);

    // --- RM queue: worst-case block = head blocks with every other
    // task blocked (scan to the end). ---
    let mut tcbs_rm = ready_tasks(n, QueueAssign::Fp);
    let mut rmq = RmQueue::new();
    for i in 0..n {
        rmq.add(ThreadId(i as u32), &mut tcbs_rm);
    }
    // Block all but the head, from the tail up (each is below
    // highestp, so O(1)).
    for i in (1..n).rev() {
        tcbs_rm.get_mut(ThreadId(i as u32)).state = ThreadState::Blocked(BlockReason::EndOfJob);
        rmq.on_block(ThreadId(i as u32), &tcbs_rm, cost);
    }
    let (_, rm_ts) = rmq.select(cost);
    tcbs_rm.get_mut(ThreadId(0)).state = ThreadState::Blocked(BlockReason::EndOfJob);
    let rm_tb = rmq.on_block(ThreadId(0), &tcbs_rm, cost);
    tcbs_rm.get_mut(ThreadId(0)).state = ThreadState::Ready;
    let rm_tu = rmq.on_unblock(ThreadId(0), &tcbs_rm, cost);

    // --- RM heap: worst case = root removal/insertion sifting the
    // full depth. ---
    let mut tcbs_h = ready_tasks(n, QueueAssign::Fp);
    let mut heap = RmHeap::new();
    for i in 0..n {
        heap.add(ThreadId(i as u32), &tcbs_h);
    }
    let (_, h_ts) = heap.select(cost);
    tcbs_h.get_mut(ThreadId(0)).state = ThreadState::Blocked(BlockReason::EndOfJob);
    let h_tb = heap.on_block(ThreadId(0), &tcbs_h, cost);
    tcbs_h.get_mut(ThreadId(0)).state = ThreadState::Ready;
    let h_tu = heap.on_unblock(ThreadId(0), &tcbs_h, cost);

    Table1Row {
        n,
        formula: [
            [
                cost.edf_tb().as_us_f64(),
                cost.edf_tu().as_us_f64(),
                cost.edf_ts(n).as_us_f64(),
            ],
            [
                cost.rmq_tb(n).as_us_f64(),
                cost.rmq_tu().as_us_f64(),
                cost.rmq_ts().as_us_f64(),
            ],
            [
                cost.rmh_tb(n).as_us_f64(),
                cost.rmh_tu(n).as_us_f64(),
                cost.rmh_ts().as_us_f64(),
            ],
        ],
        measured: [
            [us(edf_tb), us(edf_tu), us(edf_ts)],
            [us(rm_tb), us(rm_tu), us(rm_ts)],
            [us(h_tb), us(h_tu), us(h_ts)],
        ],
    }
}

/// Renders the Table 1 report over a sweep of n.
pub fn report(ns: &[usize]) -> String {
    let cost = CostModel::mc68040_25mhz();
    let mut out = String::new();
    out.push_str(
        "Table 1: scheduler run-time overheads (us)\n\
         formulas: EDF t_s = 1.2+0.25n | RM t_b = 1.0+0.36n | heap 0.4+2.8ceil(log2(n+1))\n\n",
    );
    out.push_str(&format!(
        "{:>4} | {:^23} | {:^23} | {:^23}\n",
        "n", "EDF-queue", "RM-queue", "RM-heap"
    ));
    out.push_str(&format!(
        "{:>4} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}\n",
        "", "t_b", "t_u", "t_s", "t_b", "t_u", "t_s", "t_b", "t_u", "t_s"
    ));
    for &n in ns {
        let row = measure(n, &cost);
        out.push_str(&format!(
            "{:>4} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2}\n",
            n,
            row.measured[0][0],
            row.measured[0][1],
            row.measured[0][2],
            row.measured[1][0],
            row.measured[1][1],
            row.measured[1][2],
            row.measured[2][0],
            row.measured[2][1],
            row.measured[2][2],
        ));
    }
    // The §5.1 crossover claim.
    let per_period = |n: usize, heap: bool| {
        if heap {
            cost.per_period(cost.rmh_tb(n), cost.rmh_tu(n), cost.rmh_ts())
        } else {
            cost.per_period(cost.rmq_tb(n), cost.rmq_tu(), cost.rmq_ts())
        }
    };
    let crossover = (2..200)
        .find(|&n| per_period(n, true) < per_period(n, false))
        .unwrap_or(0);
    out.push_str(&format!(
        "\nper-period queue-vs-heap crossover at n = {crossover} (paper: 58)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The live worst cases equal the Table 1 closed forms exactly.
    #[test]
    fn measured_matches_formula() {
        let cost = CostModel::mc68040_25mhz();
        for n in [1usize, 5, 10, 15, 40] {
            let row = measure(n, &cost);
            for impl_idx in 0..3 {
                for op in 0..3 {
                    let (f, m) = (row.formula[impl_idx][op], row.measured[impl_idx][op]);
                    if impl_idx == 2 {
                        // Heap sifts can traverse fewer levels than
                        // the ceiling bound.
                        assert!(m <= f + 1e-9, "n={n} impl={impl_idx} op={op}: {m} > {f}");
                    } else if impl_idx == 1 && op == 0 {
                        // The RM block scan visits the n−1 *other*
                        // tasks; the formula's n is a safe bound.
                        let exact = cost.rmq_tb(n - 1).as_us_f64();
                        assert!((m - exact).abs() < 1e-9, "n={n}: {m} != {exact}");
                        assert!(m <= f + 1e-9);
                    } else {
                        assert!(
                            (m - f).abs() < 1e-9,
                            "n={n} impl={impl_idx} op={op}: {m} != {f}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn report_renders_rows() {
        let s = report(&[5, 10]);
        assert!(s.contains("Table 1"));
        assert!(s.contains("crossover"));
        assert!(s.lines().count() > 5);
    }
}
