//! Semaphore and condition-variable system-call envelopes.
//!
//! The semaphore syscalls share one envelope — entry charge, `Syscall`
//! trace record, semaphore-logic charge — and one release tail; the
//! policy-specific bodies (who gets the lock, who blocks, what happens
//! to priorities) live behind [`crate::sync::LockPolicy`]:
//!
//! - [`crate::sync::PiPolicy`] — the paper's §6.1–§6.3 priority
//!   inheritance with early inheritance and the pre-lock queue.
//! - [`crate::sync::SrpPolicy`] — SRP/ceiling scheduling: static
//!   ceilings, a system-ceiling stack, admission at dispatch.
//!
//! Condition variables remain PI-flavoured (they release and re-acquire
//! their guard with inheritance); SRP configurations reject them at
//! build time, so the cond ops never run under a ceiling policy.

use emeralds_sim::{CvId, HotSpot, OverheadKind, SemId, Subsystem, ThreadId, TraceEvent};

use crate::kernel::Kernel;
use crate::tcb::{BlockReason, ThreadState};

impl Kernel {
    /// `acquire_sem()` system call.
    pub(crate) fn sys_acquire_sem(&mut self, tid: ThreadId, s: SemId) {
        let _span = HotSpot::enter(Subsystem::SemOp);
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "acquire_sem",
        });
        self.charge(OverheadKind::Semaphore, self.cfg.cost.sem_logic);
        self.with_policy(|p, k| p.acquire(k, tid, s));
    }

    /// `release_sem()` system call.
    ///
    /// # Panics
    ///
    /// Panics if a mutex is released by a non-holder (a program bug on
    /// the real system too).
    pub(crate) fn sys_release_sem(&mut self, tid: ThreadId, s: SemId) {
        let _span = HotSpot::enter(Subsystem::SemOp);
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "release_sem",
        });
        self.charge(OverheadKind::Semaphore, self.cfg.cost.sem_logic);
        let woke_someone = self.with_policy(|p, k| p.release(k, tid, s));
        self.tcbs.get_mut(tid).pc += 1;
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
        if woke_someone {
            // Only a release that changed the ready set needs a
            // scheduling decision; a free-semaphore release returns
            // straight to the caller.
            self.reschedule();
        }
    }

    /// `cond_wait(cv, mutex)`: atomically release the guard and wait.
    pub(crate) fn sys_cond_wait(&mut self, tid: ThreadId, cv: CvId, guard: SemId) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "cond_wait",
        });
        self.charge(OverheadKind::Semaphore, self.cfg.cost.sem_logic);
        self.record(TraceEvent::CvWait { tid, cv });
        // Release the guard (may hand it to a waiter); the blocking
        // below triggers the scheduling decision either way.
        let _ = self.release_sem_inner(tid, guard);
        // Park on the condition.
        let key = self.prio_key(tid);
        let keys: Vec<(u128, usize)> = self.cvs[cv.index()]
            .waiters
            .iter()
            .enumerate()
            .map(|(i, &w)| (self.prio_key(w), i))
            .collect();
        let pos = keys
            .iter()
            .position(|&(k, _)| k > key)
            .unwrap_or(keys.len());
        self.cvs[cv.index()].waiters.insert(pos, tid);
        self.cvs[cv.index()].guard_of.insert(pos, guard);
        self.tcbs.get_mut(tid).in_syscall = true;
        self.block_thread(tid, BlockReason::Cv(cv));
        self.reschedule();
    }

    /// `cond_signal(cv)`: wake one waiter; it re-acquires its guard
    /// mutex (with inheritance if contended) before returning.
    pub(crate) fn sys_cond_signal(&mut self, tid: ThreadId, cv: CvId) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "cond_signal",
        });
        self.charge(OverheadKind::Semaphore, self.cfg.cost.sem_logic);
        self.record(TraceEvent::CvSignal { tid, cv });
        let mut woke = false;
        if let Some((w, guard)) = self.cvs[cv.index()].pop() {
            if self.sems[guard.index()].available() {
                self.sems[guard.index()].take(w);
                self.tcbs.get_mut(w).held_sems.push(guard);
                // cond_wait returns: advance past the CondWait action.
                self.tcbs.get_mut(w).pc += 1;
                self.make_ready(w);
                woke = true;
            } else {
                // Move the waiter onto the guard's wait queue with PI.
                self.do_priority_inheritance(guard, w);
                self.enqueue_sem_waiter(guard, w);
                self.tcbs.get_mut(w).blocked_in_acquire = true;
                self.tcbs.get_mut(w).state = ThreadState::Blocked(BlockReason::Sem(guard));
            }
        }
        self.tcbs.get_mut(tid).pc += 1;
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
        if woke {
            self.reschedule();
        }
    }
}
