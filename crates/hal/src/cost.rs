//! Per-primitive virtual-time cost model.
//!
//! The paper reports kernel overheads measured on a 25 MHz Motorola
//! 68040 with a 5 MHz on-chip timer. Table 1 gives the scheduler
//! formulas; §5.7 gives the CSD queue-parse constant; §6.4 gives
//! semaphore-path anchors. This module is the *only* place those
//! microsecond constants live: the kernel charges
//! `cost.edf_select_per_node` once per TCB its EDF walk actually
//! visits, `cost.context_switch` once per dispatch, and so on. The
//! evaluation numbers are therefore emergent — the product of real
//! operation counts and calibrated per-operation prices.
//!
//! # Calibration
//!
//! Directly from the paper:
//!
//! | primitive | value | source |
//! |---|---|---|
//! | EDF block / unblock | 1.6 / 1.2 µs | Table 1 |
//! | EDF select | 1.2 + 0.25·n µs | Table 1 |
//! | RM-queue block | 1.0 + 0.36·n µs | Table 1 |
//! | RM-queue unblock / select | 1.4 / 0.6 µs | Table 1 |
//! | RM-heap block | 0.4 + 2.8·⌈log₂(n+1)⌉ µs | Table 1 |
//! | RM-heap unblock | 1.9 + 0.7·⌈log₂(n+1)⌉ µs | Table 1 |
//! | CSD queue-list parse | 0.55 µs per queue | §5.7 |
//!
//! Fitted so the §6.4 anchor measurements emerge from the Figure 6/8
//! scenario (see `emeralds-bench`, experiments `fig11`/`fig12`):
//!
//! - new-scheme FP-queue acquire/release pair = **29.4 µs**, constant;
//! - standard FP scheme exceeds it by **10.4 µs (26%)** at queue
//!   length 15;
//! - new-scheme DP-queue pair saves **11 µs (28%)** at length 15, and
//!   the standard DP slope is **2×** the new slope.
//!
//! Solving those identities (see `fit_identities` test) gives
//! context switch = 5.45 µs, semaphore fixed path = 1.0 µs, syscall
//! entry/exit = 1.55/1.225 µs, O(1) PI bookkeeping = 0.4 µs, placeholder
//! swap = 3.125 µs, standard PI walk = 0.34 µs/node. IPC constants are
//! reconstructed (the supplied paper text truncates before §7): a
//! 16-byte state-message read costs ≈1.5 µs (shared-memory copy loop,
//! no kernel call) while a 16-byte mailbox transfer costs ≈10 µs per
//! side (syscall + kernel copy), consistent with the archival (IEEE
//! TSE 2001) description of the same system.

use emeralds_sim::Duration;

/// Per-primitive virtual-time charges for the simulated target CPU.
///
/// All fields are priced for the paper's 25 MHz MC68040-class target.
/// Construct with [`CostModel::mc68040_25mhz`] (the calibrated default)
/// or [`CostModel::zero`] (for pure-logic tests), then override fields
/// as needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    // --- EDF unsorted queue (Table 1, column 1) ---
    /// Fixed cost of blocking a task under EDF (TCB update + counter).
    pub edf_block: Duration,
    /// Fixed cost of unblocking a task under EDF.
    pub edf_unblock: Duration,
    /// Fixed part of the EDF selection walk.
    pub edf_select_fixed: Duration,
    /// Per-TCB-visited part of the EDF selection walk.
    pub edf_select_per_node: Duration,

    // --- RM sorted queue with `highestp` (Table 1, column 2) ---
    /// Fixed part of blocking under RM (TCB update).
    pub rmq_block_fixed: Duration,
    /// Per-TCB scan cost of advancing `highestp` to the next ready task.
    pub rmq_block_per_node: Duration,
    /// Fixed cost of unblocking under RM (TCB update + one compare).
    pub rmq_unblock: Duration,
    /// Fixed cost of RM selection (dereference `highestp`).
    pub rmq_select: Duration,

    // --- RM sorted heap (Table 1, column 3) ---
    /// Fixed part of a heap delete (block).
    pub rmh_block_fixed: Duration,
    /// Per-heap-level cost of a delete.
    pub rmh_block_per_level: Duration,
    /// Fixed part of a heap insert (unblock).
    pub rmh_unblock_fixed: Duration,
    /// Per-heap-level cost of an insert.
    pub rmh_unblock_per_level: Duration,
    /// Fixed cost of heap selection (peek root).
    pub rmh_select: Duration,

    // --- CSD framework (§5.7) ---
    /// Cost of inspecting one queue header (ready counter / skip) while
    /// parsing the CSD prioritized list of queues.
    pub csd_queue_parse: Duration,

    // --- Context switching and mode transitions ---
    /// Full context switch: register save/restore + dispatch.
    pub context_switch: Duration,
    /// User→kernel transition of a system call.
    pub syscall_entry: Duration,
    /// Kernel→user return of a system call.
    pub syscall_exit: Duration,

    // --- Semaphores and priority inheritance (§6) ---
    /// Fixed bookkeeping of one semaphore operation (test/set state,
    /// wait-queue link/unlink), excluding PI and switches.
    pub sem_logic: Duration,
    /// O(1) priority-inheritance bookkeeping on the DP (EDF) queue:
    /// deadline inheritance set or restore.
    pub pi_dp_fixed: Duration,
    /// EMERALDS placeholder swap on the FP queue (§6.2): O(1) position
    /// exchange of holder and donor, per swap.
    pub pi_fp_swap: Duration,
    /// Fixed part of a *standard* FP-queue PI reposition.
    pub pi_fp_fixed: Duration,
    /// Per-node walk cost of a standard FP-queue PI remove+reinsert.
    pub pi_fp_per_node: Duration,

    // --- Stack Resource Policy (ceiling locking) ---
    /// SRP admission test at an unblock: one compare of the waking
    /// task's preemption level against the system ceiling (load +
    /// compare + branch; ~10 MC68040 cycles).
    pub srp_admission: Duration,
    /// Pushing one entry on the system-ceiling stack at acquire
    /// (stack write + ceiling update; ~15 cycles).
    pub srp_ceiling_push: Duration,
    /// Popping the matching entry at release and re-deriving the
    /// system ceiling (~15 cycles).
    pub srp_ceiling_pop: Duration,

    // --- IPC (§7, reconstructed) ---
    /// Fixed kernel path of one mailbox send or receive (excluding the
    /// syscall envelope and scheduling).
    pub mbox_fixed: Duration,
    /// Per-byte kernel copy cost for mailbox messages.
    pub mbox_per_byte: Duration,
    /// Fixed cost of one state-message read or write (index arithmetic,
    /// sequence check; no kernel call).
    pub statemsg_fixed: Duration,
    /// Per-byte copy cost of the state-message tight copy loop.
    pub statemsg_per_byte: Duration,

    // --- Interrupts, timers, clock ---
    /// First-level interrupt entry (vector + save).
    pub irq_entry: Duration,
    /// Interrupt exit (restore + rte).
    pub irq_exit: Duration,
    /// Reprogramming the one-shot hardware timer.
    pub timer_program: Duration,
    /// Fixed cost of processing one timer expiry in the kernel.
    pub timer_expiry: Duration,
    /// Reading the clock.
    pub clock_read: Duration,
}

impl CostModel {
    /// The calibrated model of the paper's measurement platform.
    pub fn mc68040_25mhz() -> Self {
        let us = Duration::from_us_f64;
        CostModel {
            edf_block: us(1.6),
            edf_unblock: us(1.2),
            edf_select_fixed: us(1.2),
            edf_select_per_node: us(0.25),
            rmq_block_fixed: us(1.0),
            rmq_block_per_node: us(0.36),
            rmq_unblock: us(1.4),
            rmq_select: us(0.6),
            rmh_block_fixed: us(0.4),
            rmh_block_per_level: us(2.8),
            rmh_unblock_fixed: us(1.9),
            rmh_unblock_per_level: us(0.7),
            rmh_select: us(0.6),
            csd_queue_parse: us(0.55),
            context_switch: us(5.45),
            syscall_entry: us(1.55),
            syscall_exit: us(1.225),
            sem_logic: us(1.0),
            pi_dp_fixed: us(0.4),
            pi_fp_swap: us(3.125),
            pi_fp_fixed: us(0.4),
            pi_fp_per_node: us(0.34),
            srp_admission: us(0.4),
            srp_ceiling_push: us(0.6),
            srp_ceiling_pop: us(0.6),
            mbox_fixed: us(4.0),
            mbox_per_byte: us(0.15),
            statemsg_fixed: us(0.7),
            statemsg_per_byte: us(0.05),
            irq_entry: us(2.0),
            irq_exit: us(1.0),
            timer_program: us(1.0),
            timer_expiry: us(1.5),
            clock_read: us(0.5),
        }
    }

    /// The same platform with a *conventional trap-based* system-call
    /// path instead of EMERALDS' optimized user/kernel transition
    /// (§3 lists the optimized mechanism among the kernel's features;
    /// the techniques are detailed in the authors' \[38\]). Used by the
    /// `syscalls` ablation experiment.
    pub fn mc68040_25mhz_trap_syscalls() -> Self {
        let us = Duration::from_us_f64;
        CostModel {
            // A full exception frame + dispatch on the 68040 costs
            // several microseconds each way.
            syscall_entry: us(6.2),
            syscall_exit: us(4.9),
            ..CostModel::mc68040_25mhz()
        }
    }

    /// A model with every charge zero, for logic-only unit tests where
    /// virtual-time charges would obscure behaviour.
    pub fn zero() -> Self {
        CostModel {
            edf_block: Duration::ZERO,
            edf_unblock: Duration::ZERO,
            edf_select_fixed: Duration::ZERO,
            edf_select_per_node: Duration::ZERO,
            rmq_block_fixed: Duration::ZERO,
            rmq_block_per_node: Duration::ZERO,
            rmq_unblock: Duration::ZERO,
            rmq_select: Duration::ZERO,
            rmh_block_fixed: Duration::ZERO,
            rmh_block_per_level: Duration::ZERO,
            rmh_unblock_fixed: Duration::ZERO,
            rmh_unblock_per_level: Duration::ZERO,
            rmh_select: Duration::ZERO,
            csd_queue_parse: Duration::ZERO,
            context_switch: Duration::ZERO,
            syscall_entry: Duration::ZERO,
            syscall_exit: Duration::ZERO,
            sem_logic: Duration::ZERO,
            pi_dp_fixed: Duration::ZERO,
            pi_fp_swap: Duration::ZERO,
            pi_fp_fixed: Duration::ZERO,
            pi_fp_per_node: Duration::ZERO,
            srp_admission: Duration::ZERO,
            srp_ceiling_push: Duration::ZERO,
            srp_ceiling_pop: Duration::ZERO,
            mbox_fixed: Duration::ZERO,
            mbox_per_byte: Duration::ZERO,
            statemsg_fixed: Duration::ZERO,
            statemsg_per_byte: Duration::ZERO,
            irq_entry: Duration::ZERO,
            irq_exit: Duration::ZERO,
            timer_program: Duration::ZERO,
            timer_expiry: Duration::ZERO,
            clock_read: Duration::ZERO,
        }
    }

    // --- Table 1 closed forms (worst case, n tasks in the queue) ---

    /// Worst-case EDF blocking overhead `t_b` (Table 1): O(1).
    pub fn edf_tb(&self) -> Duration {
        self.edf_block
    }

    /// Worst-case EDF unblocking overhead `t_u` (Table 1): O(1).
    pub fn edf_tu(&self) -> Duration {
        self.edf_unblock
    }

    /// Worst-case EDF selection overhead `t_s` (Table 1): full walk of
    /// an `n`-task queue, `1.2 + 0.25 n` µs on the reference platform.
    pub fn edf_ts(&self, n: usize) -> Duration {
        self.edf_select_fixed + self.edf_select_per_node * n as u64
    }

    /// Worst-case RM-queue blocking overhead `t_b` (Table 1): scan of
    /// the whole `n`-task queue, `1.0 + 0.36 n` µs.
    pub fn rmq_tb(&self, n: usize) -> Duration {
        self.rmq_block_fixed + self.rmq_block_per_node * n as u64
    }

    /// Worst-case RM-queue unblocking overhead `t_u` (Table 1): O(1).
    pub fn rmq_tu(&self) -> Duration {
        self.rmq_unblock
    }

    /// RM-queue selection overhead `t_s` (Table 1): O(1).
    pub fn rmq_ts(&self) -> Duration {
        self.rmq_select
    }

    /// Worst-case RM-heap blocking overhead (Table 1):
    /// `0.4 + 2.8 ⌈log₂(n+1)⌉` µs.
    pub fn rmh_tb(&self, n: usize) -> Duration {
        self.rmh_block_fixed + self.rmh_block_per_level * ceil_log2(n + 1)
    }

    /// Worst-case RM-heap unblocking overhead (Table 1):
    /// `1.9 + 0.7 ⌈log₂(n+1)⌉` µs.
    pub fn rmh_tu(&self, n: usize) -> Duration {
        self.rmh_unblock_fixed + self.rmh_unblock_per_level * ceil_log2(n + 1)
    }

    /// RM-heap selection overhead (Table 1): O(1).
    pub fn rmh_ts(&self) -> Duration {
        self.rmh_select
    }

    /// Per-period scheduler run-time overhead `t = 1.5 (t_b + t_u +
    /// 2 t_s)` (§5.1): each task blocks/unblocks at least once per
    /// period, and on average half the tasks make one additional
    /// blocking call per period.
    pub fn per_period(&self, tb: Duration, tu: Duration, ts: Duration) -> Duration {
        (tb + tu + ts * 2).scale_f64(1.5)
    }

    /// Mailbox copy cost for a `bytes`-byte message (one direction).
    pub fn mbox_copy(&self, bytes: usize) -> Duration {
        self.mbox_fixed + self.mbox_per_byte * bytes as u64
    }

    /// State-message copy cost for a `bytes`-byte variable.
    pub fn statemsg_copy(&self, bytes: usize) -> Duration {
        self.statemsg_fixed + self.statemsg_per_byte * bytes as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::mc68040_25mhz()
    }
}

/// `⌈log₂ v⌉` for `v ≥ 1`, as used by the heap formulas of Table 1.
pub fn ceil_log2(v: usize) -> u64 {
    assert!(v >= 1, "ceil_log2 of zero");
    (usize::BITS - (v - 1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> Duration {
        Duration::from_us_f64(v)
    }

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    fn table1_edf_formulas() {
        let m = CostModel::mc68040_25mhz();
        assert_eq!(m.edf_tb(), us(1.6));
        assert_eq!(m.edf_tu(), us(1.2));
        assert_eq!(m.edf_ts(10), us(1.2 + 0.25 * 10.0));
        assert_eq!(m.edf_ts(40), us(1.2 + 0.25 * 40.0));
    }

    #[test]
    fn table1_rm_queue_formulas() {
        let m = CostModel::mc68040_25mhz();
        assert_eq!(m.rmq_tb(10), us(1.0 + 0.36 * 10.0));
        assert_eq!(m.rmq_tu(), us(1.4));
        assert_eq!(m.rmq_ts(), us(0.6));
    }

    #[test]
    fn table1_rm_heap_formulas() {
        let m = CostModel::mc68040_25mhz();
        // n = 10: ceil(log2(11)) = 4.
        assert_eq!(m.rmh_tb(10), us(0.4 + 2.8 * 4.0));
        assert_eq!(m.rmh_tu(10), us(1.9 + 0.7 * 4.0));
        assert_eq!(m.rmh_ts(), us(0.6));
    }

    /// The paper avoids heaps because "unless n is very large (58 in
    /// this case), the total run-time overhead t for a heap is more
    /// than for a queue" (§5.1). Verify the crossover from the model.
    #[test]
    fn rm_heap_crosses_queue_near_58_tasks() {
        let m = CostModel::mc68040_25mhz();
        let total_queue = |n: usize| m.per_period(m.rmq_tb(n), m.rmq_tu(), m.rmq_ts());
        let total_heap = |n: usize| m.per_period(m.rmh_tb(n), m.rmh_tu(n), m.rmh_ts());
        assert!(total_heap(50) > total_queue(50));
        assert!(total_heap(70) < total_queue(70));
        // Locate the first n where the heap wins; Table 1's discussion
        // puts it at 58.
        let crossover = (2..200).find(|&n| total_heap(n) < total_queue(n)).unwrap();
        assert!(
            (55..=60).contains(&crossover),
            "crossover at {crossover}, expected ≈58"
        );
    }

    #[test]
    fn per_period_matches_1_5x_formula() {
        let m = CostModel::mc68040_25mhz();
        let t = m.per_period(us(1.0), us(2.0), us(3.0));
        assert_eq!(t, us(1.5 * (1.0 + 2.0 + 2.0 * 3.0)));
    }

    /// The fitted identities behind the §6.4 anchors (see module docs
    /// and the `fig11`/`fig12` experiments, which measure the same
    /// quantities from the executing kernel). For a contended pair on
    /// a queue of length 15, with the Figure 6 scenario's geometry:
    ///
    /// - DP saving = t_b + t_s(15) + ctx − hint check = 11.0 µs;
    /// - DP new-scheme pair = 4 syscall envelopes + 5 semaphore ops +
    ///   2 deadline inheritances + t_s(15) + ctx = 28.3 µs
    ///   (std = 39.3 µs → 28% improvement);
    /// - FP new-scheme pair = same with 2 placeholder swaps and the
    ///   O(1) FP select = 29.4 µs, constant in queue length;
    /// - FP saving = t_b(1) + t_s + ctx + 2 PI-fixed + 28-node walk −
    ///   2 swaps − hint check ≈ 10.4 µs (26%).
    #[test]
    fn fit_identities() {
        let m = CostModel::mc68040_25mhz();
        let envelope = m.syscall_entry + m.syscall_exit;
        let dp_saving = m.edf_tb() + m.edf_ts(15) + m.context_switch - m.sem_logic;
        assert_eq!(dp_saving, us(11.0));
        // The Figure 6 scenario's contended pair performs 4 syscall
        // envelopes and 6 semaphore bookkeeping steps beyond the
        // no-semaphore baseline (verified live by `expts fig11/fig12`).
        let dp_new =
            envelope * 4 + m.sem_logic * 6 + m.pi_dp_fixed * 2 + m.edf_ts(15) + m.context_switch;
        assert_eq!(dp_new, us(28.3));
        let fp_new =
            envelope * 4 + m.sem_logic * 6 + m.pi_fp_swap * 2 + m.rmq_ts() + m.context_switch;
        assert_eq!(fp_new, us(29.4));
        let fp_saving =
            m.rmq_tb(1) + m.rmq_ts() + m.context_switch + m.pi_fp_fixed * 2 + m.pi_fp_per_node * 28
                - m.pi_fp_swap * 2
                - m.sem_logic;
        assert!((fp_saving.as_us_f64() - 10.4).abs() < 0.15, "{fp_saving}");
    }

    /// SRP ceiling operations are priced like the small fixed-cost
    /// bookkeeping they are (compare + stack write): one full
    /// push/pop/admission round stays below a single placeholder swap,
    /// which is the cheapest PI queue operation — the protocols'
    /// *fixed* costs are comparable and the interesting differences
    /// (switches, blocking shape) are emergent.
    #[test]
    fn srp_ceiling_ops_priced_below_one_pi_swap() {
        let m = CostModel::mc68040_25mhz();
        let round = m.srp_ceiling_push + m.srp_ceiling_pop + m.srp_admission;
        assert_eq!(round, us(1.6));
        assert!(round < m.pi_fp_swap);
    }

    #[test]
    fn ipc_anchor_costs() {
        let m = CostModel::mc68040_25mhz();
        // 16-byte state message read ≈ 1.5 µs (reconstructed anchor).
        assert_eq!(m.statemsg_copy(16), us(1.5));
        // 16-byte mailbox copy = 6.4 µs before the syscall envelope:
        // with entry+exit (3.3 µs) one side lands near 10 µs.
        assert_eq!(m.mbox_copy(16), us(6.4));
        assert!(m.mbox_copy(16) + m.syscall_entry + m.syscall_exit > us(9.0));
    }

    #[test]
    fn zero_model_charges_nothing() {
        let z = CostModel::zero();
        assert_eq!(z.edf_ts(100), Duration::ZERO);
        assert_eq!(z.rmq_tb(50), Duration::ZERO);
        assert_eq!(
            z.per_period(z.edf_tb(), z.edf_tu(), z.edf_ts(9)),
            Duration::ZERO
        );
        assert_eq!(z.mbox_copy(64), Duration::ZERO);
    }

    #[test]
    fn default_is_calibrated_model() {
        assert_eq!(CostModel::default(), CostModel::mc68040_25mhz());
    }

    /// The trap path costs several times the optimized transition and
    /// differs in nothing else.
    #[test]
    fn trap_variant_only_raises_syscall_costs() {
        let opt = CostModel::mc68040_25mhz();
        let trap = CostModel::mc68040_25mhz_trap_syscalls();
        assert!(trap.syscall_entry.as_us_f64() > 3.0 * opt.syscall_entry.as_us_f64());
        assert!(trap.syscall_exit.as_us_f64() > 3.0 * opt.syscall_exit.as_us_f64());
        let mut normalized = trap.clone();
        normalized.syscall_entry = opt.syscall_entry;
        normalized.syscall_exit = opt.syscall_exit;
        assert_eq!(normalized, opt);
    }
}
