//! Engine control unit — the paper's flagship domain (§1: "engine
//! control in automobiles").
//!
//! Structure:
//!
//! - a crank-position *sensor* raises an interrupt every 2 ms; a
//!   user-level *driver thread* (§3's device-driver pattern) reads it
//!   and publishes the RPM through a lock-free *state message*;
//! - a 5 ms *fuel control* task reads the RPM, updates the shared
//!   engine model under a *mutex with priority inheritance*, and
//!   commands the injector actuator;
//! - a 10 ms *spark control* task shares the same model object;
//! - a 100 ms *diagnostics* task also takes the lock (the classic
//!   low-priority-holder inversion that PI bounds);
//! - everything runs under CSD-2 with the EMERALDS semaphore scheme.
//!
//! ```sh
//! cargo run --example engine_control
//! ```

use emeralds::core::kernel::{KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::{SchedPolicy, SemScheme};
use emeralds::sim::{Duration, IrqLine, StateId, Time};

fn main() {
    let cfg = KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![3],
        },
        sem_scheme: SemScheme::Emeralds,
        ..KernelConfig::default()
    };
    let mut b = KernelBuilder::new(cfg);
    let ecu = b.add_process("ecu");
    let model_lock = b.add_mutex();
    let crank_irq = IrqLine(4);

    // Board: crank sensor (IRQ-driven) + injector and spark actuators.
    let (crank, injector, spark) = {
        let board = b.board_mut();
        let crank = board.add_sensor("crank", Some(crank_irq));
        let injector = board.add_actuator("injector");
        let spark = board.add_actuator("spark");
        // 2 ms crank pulses carrying a rising RPM signal.
        board.schedule_periodic_samples(crank, Time::from_ms(1), Duration::from_ms(2), 200, |k| {
            800 + (k * 7 % 400) as u32
        });
        (crank, injector, spark)
    };

    // Crank driver: wait for the pulse, read the sensor, publish RPM.
    let rpm_var = StateId(0);
    let driver = b.add_driver_task(
        ecu,
        "crank-driver",
        Duration::from_ms(2),
        Script::looping(vec![
            Action::WaitIrq(crank_irq),
            Action::DevRead(crank),
            Action::Compute(Duration::from_us(80)),
            // Publish the RPM just read from the device register.
            Action::StateWrite {
                var: rpm_var,
                value: Operand::FromLastRead,
            },
        ]),
    );

    // Fuel control: read RPM, update the model under the lock, fire
    // the injector.
    let fuel = b.add_periodic_task(
        ecu,
        "fuel-ctrl",
        Duration::from_ms(5),
        Script::periodic(vec![
            Action::StateRead(rpm_var),
            Action::AcquireSem(model_lock),
            Action::Compute(Duration::from_us(700)),
            Action::ReleaseSem(model_lock),
            Action::DevWrite(injector, Operand::FromLastRead),
        ]),
    );
    // Spark control: same object, slower rate.
    let spark_task = b.add_periodic_task(
        ecu,
        "spark-ctrl",
        Duration::from_ms(10),
        Script::periodic(vec![
            Action::StateRead(rpm_var),
            Action::AcquireSem(model_lock),
            Action::Compute(Duration::from_us(900)),
            Action::ReleaseSem(model_lock),
            Action::DevWrite(spark, Operand::Const(1)),
        ]),
    );
    // Diagnostics: long-period lock holder (the PI stress).
    let diag = b.add_periodic_task(
        ecu,
        "diagnostics",
        Duration::from_ms(100),
        Script::periodic(vec![
            Action::AcquireSem(model_lock),
            Action::Compute(Duration::from_ms(3)),
            Action::ReleaseSem(model_lock),
            Action::Compute(Duration::from_ms(2)),
        ]),
    );

    // The state-message variable: written by the driver, read by all.
    let var = b.add_state_msg(driver, 8, 3, &[ecu]);
    assert_eq!(var, rpm_var, "first state message gets id 0");

    let mut k = b.build();
    k.run_until(Time::from_ms(400));

    println!("=== engine control, 400 ms ===");
    for tid in [driver, fuel, spark_task, diag] {
        let t = k.tcb(tid);
        println!(
            "{:<12} jobs={:<3} misses={} cpu={}",
            t.name, t.jobs_completed, t.deadline_misses, t.cpu_time
        );
    }
    let injections = k.board().actuator_log(injector).len();
    let sparks = k.board().actuator_log(spark).len();
    println!("\ninjector commands: {injections}, spark commands: {sparks}");
    println!(
        "rpm state message: {} writes, {} reads",
        k.statemsg(var).writes(),
        k.statemsg(var).reads()
    );
    println!(
        "priority inheritance events: {}",
        k.trace()
            .filter(|e| matches!(e, emeralds::sim::TraceEvent::PriorityInherit { .. }))
            .count()
    );
    println!("\n=== overhead ledger ===");
    print!("{}", k.accounting().render());

    assert_eq!(k.total_deadline_misses(), 0, "the ECU must never miss");
    assert!(injections >= 79, "fuel loop ran every 5 ms");
    println!("\nall deadlines met under CSD-2 + EMERALDS semaphores");
}
