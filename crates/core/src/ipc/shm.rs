//! Shared-memory regions (Figure 1: "IPC ... shared memory").
//!
//! A shared region is MPU-backed memory mapped into more than one
//! process. State-message buffers live in shared regions; applications
//! can also use raw regions guarded by semaphores (the OO-object
//! pattern of §6).

use emeralds_sim::{ProcId, RegionId};

/// A shared-memory region descriptor (the MPU holds the access-control
/// view; this records the IPC-level registration).
#[derive(Clone, Debug)]
pub struct SharedRegion {
    pub id: RegionId,
    pub base: u64,
    pub size: u64,
    pub owner: ProcId,
    pub mapped: Vec<ProcId>,
}

impl SharedRegion {
    /// Creates a region owned (and mapped) by `owner`.
    pub fn new(id: RegionId, base: u64, size: u64, owner: ProcId) -> SharedRegion {
        SharedRegion {
            id,
            base,
            size,
            owner,
            mapped: vec![owner],
        }
    }

    /// Maps the region into another process (idempotent).
    pub fn map_into(&mut self, proc: ProcId) {
        if !self.mapped.contains(&proc) {
            self.mapped.push(proc);
        }
    }

    /// True if `proc` has the region mapped.
    pub fn is_mapped(&self, proc: ProcId) -> bool {
        self.mapped.contains(&proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_mapped_by_default() {
        let r = SharedRegion::new(RegionId(0), 0x4000, 64, ProcId(2));
        assert!(r.is_mapped(ProcId(2)));
        assert!(!r.is_mapped(ProcId(0)));
    }

    #[test]
    fn mapping_is_idempotent() {
        let mut r = SharedRegion::new(RegionId(0), 0x4000, 64, ProcId(0));
        r.map_into(ProcId(1));
        r.map_into(ProcId(1));
        assert_eq!(r.mapped.len(), 2);
        assert!(r.is_mapped(ProcId(1)));
    }
}
