//! Property-style invariants of the fault-injection path.
//!
//! Like `proptest_invariants.rs`, case generation is a deterministic
//! seeded [`SimRng`] loop (the container builds offline, so the
//! proptest crate itself is unavailable). Two properties the CAN
//! error machinery must uphold for any fault schedule:
//!
//! 1. **Retransmission never reorders**: same-priority frames from
//!    one node arrive in FIFO order and none are lost, no matter how
//!    many grants the corruption schedule flags.
//! 2. **Bus-off contains the babbler**: a node driven to bus-off
//!    stops appearing on the bus — frames it posts while off are
//!    dropped at its dead NIC — while other nodes keep transmitting,
//!    and after recovery it rejoins.
//! 3. **Frame accounting balances**: at any observation point,
//!    `sent == delivered + dropped + in_flight` — no frame is ever
//!    leaked by the retry/overwrite/outage machinery, state links
//!    included.

use emeralds::core::ipc::Message;
use emeralds::core::kernel::{Kernel, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::SchedPolicy;
use emeralds::faults::FaultPlan;
use emeralds::fieldbus::{addressed_tag, Cluster, Network};
use emeralds::sim::{Duration, IrqLine, MboxId, NodeId, SimRng, StateId, ThreadId, Time};

/// The frame-conservation invariant, checked wherever a network is
/// observed at rest.
fn assert_frames_conserved(net: &Network, ctx: &str) {
    let s = &net.stats;
    assert_eq!(
        s.frames_sent,
        s.frames_delivered + s.frames_dropped + s.frames_in_flight,
        "frame accounting leak ({ctx}): {s:?}"
    );
}

/// Randomized cases per property.
const CASES: u64 = 16;

/// A minimal node: one idle periodic task keeps the kernel alive;
/// frames are injected and observed externally through the mailboxes.
fn shell_node(tx_cap: usize, rx_cap: usize) -> (Kernel, MboxId, MboxId, IrqLine) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process("shell");
    let tx = b.add_mailbox(tx_cap);
    let rx = b.add_mailbox(rx_cap);
    let line = IrqLine(2);
    b.board_mut().add_nic("can", line);
    b.add_periodic_task(
        p,
        "idle",
        Duration::from_ms(5),
        Script::compute_only(Duration::from_us(10)),
    );
    (b.build(), tx, rx, line)
}

/// Queues `n_frames` same-priority frames on one node under a
/// corruption schedule and checks every frame arrives, in order.
/// Returns (retransmissions, error_frames) for aggregate assertions.
fn check_fifo_preserved(seed: u64, n_frames: u32, corruption: f64) -> (u64, u64) {
    let mut net = Network::new(1_000_000);
    let (k0, tx0, rx0, irq0) = shell_node(64, 8);
    let (k1, tx1, rx1, irq1) = shell_node(8, 64);
    let src = net.add_node("src", k0, tx0, rx0, irq0, 10);
    let sink = net.add_node("sink", k1, tx1, rx1, irq1, 20);
    net.set_fault_plan(&FaultPlan::new(seed).with_corruption(corruption));
    for i in 0..n_frames {
        let ok = net.node_mut(src).kernel.external_mbox_push(
            tx0,
            Message {
                bytes: 8,
                tag: addressed_tag(Some(sink), i),
                sender: ThreadId(0),
            },
        );
        assert!(ok, "TX mailbox overflow at frame {i}");
    }
    net.run_until(Time::from_ms(60));
    // The corruption rates used here cannot push TEC past 255, so no
    // frame may be lost; a loss here is itself a reordering bug.
    assert_eq!(
        net.stats.bus_off_events, 0,
        "unexpected bus-off at corruption {corruption}"
    );
    for i in 0..n_frames {
        let msg = net
            .node_mut(sink)
            .kernel
            .external_mbox_pop(rx1)
            .unwrap_or_else(|| panic!("frame {i} missing (seed {seed:#x}, p {corruption})"));
        assert_eq!(
            msg.tag, i,
            "frames reordered (seed {seed:#x}, p {corruption})"
        );
        assert_eq!(msg.sender, ThreadId(u32::MAX - src.0));
    }
    assert!(
        net.node_mut(sink).kernel.external_mbox_pop(rx1).is_none(),
        "phantom extra frame delivered"
    );
    assert_frames_conserved(&net, &format!("fifo seed {seed:#x}"));
    (net.stats.retransmissions, net.stats.error_frames)
}

#[test]
fn retransmission_preserves_same_priority_fifo() {
    // Pinned high-corruption case: this seed provably retransmits.
    let (retrans, errors) = check_fifo_preserved(0xF1F0, 20, 0.35);
    assert!(retrans > 0, "pinned case must exercise retransmission");
    assert_eq!(retrans, errors, "every flagged frame was requeued");

    let mut rng = SimRng::seeded(0xCA5E);
    let mut total_retrans = 0;
    for _ in 0..CASES {
        let n = rng.int_in(5, 30) as u32;
        let p = rng.int_in(5, 35) as f64 / 100.0;
        let seed = rng.int_in(1, u64::MAX - 1);
        let (r, _) = check_fifo_preserved(seed, n, p);
        total_retrans += r;
    }
    assert!(total_retrans > 0, "no case exercised the error path");
}

/// Drives one node to bus-off by babbling, then checks containment:
/// while off, its frames vanish at the NIC and a clean peer still
/// gets through; once the window ends, it recovers and rejoins.
fn check_busoff_contains(babble_period_us: u64, babble_start_us: u64) {
    let mut net = Network::new(1_000_000);
    let (k0, tx0, rx0, irq0) = shell_node(8, 8);
    let (k1, tx1, rx1, irq1) = shell_node(8, 8);
    let (k2, tx2, rx2, irq2) = shell_node(8, 64);
    let babbler = net.add_node("babbler", k0, tx0, rx0, irq0, 10);
    let clean = net.add_node("clean", k1, tx1, rx1, irq1, 11);
    let sink = net.add_node("sink", k2, tx2, rx2, irq2, 12);
    net.set_fault_plan(&FaultPlan::new(1).babble(
        babbler,
        Time::from_us(babble_start_us),
        Duration::from_ms(40),
        Duration::from_us(babble_period_us),
    ));

    // Phase 1: poll in 0.5 ms steps until the controller goes
    // bus-off (expected ~32 flagged grants after the window opens).
    let mut t = Time::ZERO;
    while !net.node_stats(babbler).is_bus_off() {
        t += Duration::from_us(500);
        assert!(
            t <= Time::from_ms(15),
            "babbler never reached bus-off (period {babble_period_us} us)"
        );
        net.run_until(t);
    }
    assert!(net.stats.bus_off_events >= 1);
    assert!(net.stats.babble_frames > 0);
    let dropped_before = net.node_stats(babbler).tx_dropped;

    // Phase 2: both nodes post frames while the babbler is off the
    // bus. Recovery needs 1408 us of bus silence and the poll lags
    // entry by at most ~500 us, so 800 us stays inside the outage.
    let k = 3u32;
    for i in 0..k {
        let m = |tag| Message {
            bytes: 8,
            tag,
            sender: ThreadId(0),
        };
        assert!(net
            .node_mut(babbler)
            .kernel
            .external_mbox_push(tx0, m(addressed_tag(Some(sink), 100 + i))));
        assert!(net
            .node_mut(clean)
            .kernel
            .external_mbox_push(tx1, m(addressed_tag(Some(sink), 200 + i))));
    }
    net.run_until(t + Duration::from_us(800));
    assert!(
        net.node_stats(babbler).is_bus_off(),
        "recovered inside the outage window"
    );
    let mut from_clean = 0;
    while let Some(msg) = net.node_mut(sink).kernel.external_mbox_pop(rx2) {
        assert_eq!(
            msg.sender,
            ThreadId(u32::MAX - clean.0),
            "bus-off node's frame appeared on the bus (tag {:#x})",
            msg.tag
        );
        from_clean += 1;
    }
    assert_eq!(from_clean, k, "clean node was starved");
    assert_eq!(
        net.node_stats(babbler).tx_dropped - dropped_before,
        u64::from(k),
        "offline TX must be dropped at the NIC"
    );

    // Phase 3: after the babble window closes, the node recovers and
    // transmits again.
    net.run_until(Time::from_ms(60));
    assert!(!net.node_stats(babbler).is_bus_off(), "never recovered");
    assert!(net.stats.bus_off_recoveries >= 1);
    assert!(net.node_mut(babbler).kernel.external_mbox_push(
        tx0,
        Message {
            bytes: 8,
            tag: addressed_tag(Some(sink), 777),
            sender: ThreadId(0),
        }
    ));
    net.run_until(Time::from_ms(62));
    let msg = net
        .node_mut(sink)
        .kernel
        .external_mbox_pop(rx2)
        .expect("recovered node transmits again");
    assert_eq!(msg.tag, 777);
    assert_eq!(msg.sender, ThreadId(u32::MAX - babbler.0));
    assert_frames_conserved(&net, "busoff containment");
}

#[test]
fn busoff_silences_babbler_until_recovery() {
    // Pinned case plus a seeded sweep over babble timing.
    check_busoff_contains(60, 500);
    let mut rng = SimRng::seeded(0xB0FF);
    for _ in 0..8 {
        let period = rng.int_in(40, 120);
        let start = rng.int_in(200, 1500);
        check_busoff_contains(period, start);
    }
}

/// Frame conservation must hold *at the failure boundary itself*, not
/// just at a quiescent horizon: a babbler driven to bus-off with real
/// frames still queued behind it, and later silenced by recovery, may
/// not leak a single frame. The ledger is checked at every 250 us
/// observation point straddling babble onset, the bus-off instant,
/// the queued-frame purge, and recovery.
#[test]
fn busoff_boundary_conserves_queued_and_inflight_frames() {
    let mut rng = SimRng::seeded(0xB0FF0);
    for case in 0..8u64 {
        let babble_period = rng.int_in(40, 120);
        let babble_start = rng.int_in(200, 1500);
        let mut net = Network::new(1_000_000);
        let (k0, tx0, rx0, irq0) = shell_node(64, 8);
        let (k1, tx1, rx1, irq1) = shell_node(8, 64);
        let babbler = net.add_node("babbler", k0, tx0, rx0, irq0, 10);
        let sink = net.add_node("sink", k1, tx1, rx1, irq1, 20);
        net.set_fault_plan(&FaultPlan::new(case + 1).babble(
            babbler,
            Time::from_us(babble_start),
            Duration::from_ms(20),
            Duration::from_us(babble_period),
        ));
        // A backlog of real frames sits queued while the babble storm
        // drives the controller to bus-off around them.
        for i in 0..12u32 {
            assert!(net.node_mut(babbler).kernel.external_mbox_push(
                tx0,
                Message {
                    bytes: 8,
                    tag: addressed_tag(Some(sink), i),
                    sender: ThreadId(0),
                }
            ));
        }
        let mut t = Time::ZERO;
        let mut saw_busoff = false;
        while t < Time::from_ms(50) {
            t += Duration::from_us(250);
            net.run_until(t);
            saw_busoff |= net.node_stats(babbler).is_bus_off();
            assert_frames_conserved(&net, &format!("case {case} at {t:?}"));
        }
        assert!(saw_busoff, "case {case} never reached bus-off");
        assert!(net.stats.bus_off_recoveries >= 1, "case {case}");
        // The purge at the bus-off boundary charged the queued frames.
        assert!(
            net.node_stats(babbler).tx_dropped > 0 || net.stats.frames_delivered >= 12,
            "case {case}: queued frames neither dropped nor delivered: {:?}",
            net.stats
        );
    }
}

/// The parallel cluster executive must uphold the same ledger across
/// randomized fault schedules and staggered observation horizons —
/// fail-stop outages purging pending frames, babble storms, bus-off
/// recoveries — at any worker count.
#[test]
fn parallel_executive_conserves_frames_across_fault_boundaries() {
    let mut rng = SimRng::seeded(0xC0A5E);
    for case in 0..8u64 {
        let seed = rng.int_in(1, u64::MAX - 1);
        let workers = *[1usize, 2, 4].get(case as usize % 3).unwrap();
        let horizon = Time::from_ms(60);
        let plan = FaultPlan::random(seed, 4, horizon, 0.05, 0.6, 0.6);
        let mut c = Cluster::new(1_000_000).with_workers(workers);
        for i in 0..4u32 {
            let (k, tx, rx, irq) = traffic_node(i, NodeId((i + 1) % 4));
            c.add_node(format!("n{i}"), k, tx, rx, irq, i + 1);
        }
        c.set_fault_plan(&plan);
        // Staggered horizons: the run is interrupted mid-outage and
        // mid-recovery, and the ledger must balance at every rest.
        for step in [7u64, 19, 33, 41, 60] {
            c.run_until(Time::from_ms(step));
            let s = c.stats();
            assert_eq!(
                s.frames_sent,
                s.frames_delivered + s.frames_dropped + s.frames_in_flight,
                "cluster leak (case {case}, workers {workers}, {step} ms): {s:?}"
            );
        }
    }
}

/// A node with real periodic traffic for the cluster-side ledger
/// sweep.
fn traffic_node(i: u32, dst: NodeId) -> (Kernel, MboxId, MboxId, IrqLine) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process(format!("traffic{i}"));
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(16);
    let line = IrqLine(2);
    b.board_mut().add_nic("can", line);
    b.add_periodic_task(
        p,
        "tx",
        Duration::from_us(3_000 + 700 * u64::from(i)),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(80)),
            Action::SendMbox {
                mbox: tx,
                bytes: 8,
                tag: addressed_tag(Some(dst), i),
            },
        ]),
    );
    b.add_driver_task(
        p,
        "nicdrv",
        Duration::from_ms(2),
        Script::looping(vec![
            Action::RecvMbox(rx),
            Action::Compute(Duration::from_us(40)),
        ]),
    );
    (b.build(), tx, rx, line)
}

/// A writer node publishing into a state-message variable on a
/// jittered period. The NIC samples the variable and ships changed
/// versions over a `link_state` channel.
fn state_writer_node(period_us: u64) -> (Kernel, MboxId, MboxId, IrqLine, StateId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process("writer");
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(8);
    let line = IrqLine(2);
    b.board_mut().add_nic("can", line);
    let tid = b.add_periodic_task(
        p,
        "pub",
        Duration::from_us(period_us),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(30)),
            Action::StateWrite {
                var: StateId(0),
                value: Operand::Const(0xBEEF),
            },
        ]),
    );
    let var = b.add_state_msg(tid, 8, 3, &[]);
    assert_eq!(var, StateId(0));
    (b.build(), tx, rx, line, var)
}

/// A reader node holding the NIC-fed replica, polled by a periodic
/// control task.
fn state_reader_node(period_us: u64) -> (Kernel, MboxId, MboxId, IrqLine, StateId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process("reader");
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(8);
    let line = IrqLine(2);
    b.board_mut().add_nic("can", line);
    let var = b.add_state_replica(p, 8, 3, &[]);
    b.add_periodic_task(
        p,
        "law",
        Duration::from_us(period_us),
        Script::periodic(vec![
            Action::StateRead(var),
            Action::Compute(Duration::from_us(50)),
        ]),
    );
    (b.build(), tx, rx, line, var)
}

/// State links must uphold conservation under wire corruption: every
/// sampled version is either delivered, overwritten in place (which
/// never counts as a new send), or still pending at the horizon — and
/// the replica converges to the writer's value.
#[test]
fn state_links_conserve_frames_under_corruption() {
    let mut rng = SimRng::seeded(0x57A7E);
    for case in 0..8 {
        let p = rng.int_in(0, 30) as f64 / 100.0;
        let seed = rng.int_in(1, u64::MAX - 1);
        let wr_period = rng.int_in(2_000, 6_000);
        let mut net = Network::new(1_000_000);
        let (k0, tx0, rx0, irq0, wvar) = state_writer_node(wr_period);
        let (k1, tx1, rx1, irq1, rvar) = state_reader_node(5_000);
        let src = net.add_node("writer", k0, tx0, rx0, irq0, 10);
        let dst = net.add_node("reader", k1, tx1, rx1, irq1, 20);
        net.link_state(src, wvar, dst, rvar, 30, 8);
        net.set_fault_plan(&FaultPlan::new(seed).with_corruption(p));
        net.run_until(Time::from_ms(60));

        assert_frames_conserved(&net, &format!("state case {case}, p {p}"));
        assert!(
            net.stats.frames_delivered > 0,
            "no state frame arrived (case {case})"
        );
        let replica = net.node_mut(dst).kernel.statemsg(rvar);
        let (value, stamp, seq) = replica.peek();
        assert!(seq > 0, "replica never written (case {case})");
        assert_eq!(value, 0xBEEF, "replica diverged (case {case})");
        assert!(
            stamp <= Time::from_ms(60),
            "stamp from the future (case {case})"
        );
        let m = net.node_mut(dst).kernel.metrics();
        assert!(
            m.state_age.count() > 0,
            "reader recorded no data age (case {case})"
        );
    }
}
