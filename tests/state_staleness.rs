//! End-to-end state-message staleness (data age) under healthy and
//! faulted fieldbuses.
//!
//! Each read of a NIC-fed replica records *data age* — the read
//! instant minus the virtual-time stamp the original writer put on
//! that version — into the kernel's staleness histogram. Two bounds
//! pin the instrumentation:
//!
//! 1. **Healthy bus**: age never exceeds the writer period plus a
//!    small delivery slack (`P + D`), because overwrite-not-queue NIC
//!    semantics always ship the freshest version.
//! 2. **Faulted bus**: a storm (corruption + fail-stop outages +
//!    babble) stretches the tail, but every spike stays inside the
//!    outage envelope, frame accounting still balances, and the whole
//!    measurement is bit-for-bit deterministic.

use emeralds::core::kernel::{Kernel, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::SchedPolicy;
use emeralds::faults::FaultPlan;
use emeralds::fieldbus::{Cluster, Network};
use emeralds::sim::{Duration, IrqLine, MboxId, NodeId, StateId, Time};

const NIC_IRQ: IrqLine = IrqLine(2);

/// A node publishing into a state-message variable every `period_us`.
fn writer_node(period_us: u64) -> (Kernel, MboxId, MboxId, StateId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process("writer");
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(8);
    b.board_mut().add_nic("can", NIC_IRQ);
    let tid = b.add_periodic_task(
        p,
        "pub",
        Duration::from_us(period_us),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(40)),
            Action::StateWrite {
                var: StateId(0),
                value: Operand::Const(42),
            },
        ]),
    );
    let var = b.add_state_msg(tid, 8, 3, &[]);
    assert_eq!(var, StateId(0));
    (b.build(), tx, rx, var)
}

/// A node polling its NIC-fed replica every `period_us`.
fn reader_node(period_us: u64) -> (Kernel, MboxId, MboxId, StateId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process("reader");
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(8);
    b.board_mut().add_nic("can", NIC_IRQ);
    let var = b.add_state_replica(p, 8, 3, &[]);
    b.add_periodic_task(
        p,
        "law",
        Duration::from_us(period_us),
        Script::periodic(vec![
            Action::StateRead(var),
            Action::Compute(Duration::from_us(60)),
        ]),
    );
    (b.build(), tx, rx, var)
}

/// Healthy serial bus: every recorded age obeys `age <= P + D`, where
/// `P` is the writer period and `D` a small delivery slack (frame
/// time + NIC sampling quantum), and the mean sits below `P`.
#[test]
fn healthy_bus_age_bounded_by_period_plus_delivery() {
    let period_us = 10_000;
    let mut net = Network::new(1_000_000);
    let (kw, txw, rxw, wvar) = writer_node(period_us);
    let (kr, txr, rxr, rvar) = reader_node(7_000);
    let src = net.add_node("writer", kw, txw, rxw, NIC_IRQ, 1);
    let dst = net.add_node("reader", kr, txr, rxr, NIC_IRQ, 2);
    net.link_state(src, wvar, dst, rvar, 5, 8);
    net.run_until(Time::from_ms(200));

    let s = &net.stats;
    assert_eq!(
        s.frames_sent,
        s.frames_delivered + s.frames_dropped + s.frames_in_flight,
        "frame accounting leak: {s:?}"
    );
    assert_eq!(s.frames_dropped, 0, "healthy bus dropped frames");

    let age = net.node_mut(dst).kernel.metrics().state_age;
    assert!(age.count() >= 20, "too few reads recorded: {}", age.count());
    let bound = Duration::from_us(period_us) + Duration::from_ms(3);
    assert!(
        age.max() <= bound,
        "data age {} exceeds P + D bound {}",
        age.max(),
        bound
    );
    assert!(
        age.mean() <= Duration::from_us(period_us),
        "mean age {} exceeds the writer period",
        age.mean()
    );
}

/// Builds a 2-pair state-linked cluster for the storm test.
fn storm_cluster(workers: usize) -> Cluster {
    let mut c = Cluster::new(1_000_000).with_workers(workers);
    let mut wvars = Vec::new();
    for i in 0..2usize {
        let (k, tx, rx, var) = writer_node(8_000 + 2_000 * i as u64);
        c.add_node(format!("writer{i}"), k, tx, rx, NIC_IRQ, (i + 1) as u32);
        wvars.push(var);
    }
    for (i, &wvar) in wvars.iter().enumerate() {
        let (k, tx, rx, var) = reader_node(9_000 + 2_000 * i as u64);
        c.add_node(format!("reader{i}"), k, tx, rx, NIC_IRQ, (i + 3) as u32);
        c.link_state(
            NodeId(i as u32),
            wvar,
            NodeId((2 + i) as u32),
            var,
            (i + 10) as u32,
            8,
        );
    }
    c
}

/// Storm: corrupted grants, fail-stop outages, and babble stretch the
/// staleness tail, but frame accounting still balances, spikes stay
/// inside the horizon envelope, and the faulted measurement is
/// bit-for-bit reproducible.
#[test]
fn storm_bounds_age_spikes_and_conserves_frames() {
    let horizon = Time::from_ms(160);
    let plan = FaultPlan::random(0x57, 4, horizon, 0.05, 0.5, 0.5);
    assert!(!plan.is_empty());

    let run = || {
        let mut c = storm_cluster(1);
        c.set_fault_plan(&plan);
        c.run_until(horizon);
        let stats = *c.stats();
        let age = c.metrics().state_age;
        (stats, age)
    };
    let (stats, age) = run();

    assert_eq!(
        stats.frames_sent,
        stats.frames_delivered + stats.frames_dropped + stats.frames_in_flight,
        "frame accounting leak under storm: {stats:?}"
    );
    assert!(
        stats.error_frames > 0 || stats.frames_lost_offline > 0,
        "storm left no fault signal: {stats:?}"
    );
    assert!(age.count() > 0, "no data age recorded under storm");
    assert!(age.max() >= age.mean());
    assert!(
        age.max() <= horizon.saturating_since(Time::ZERO),
        "age spike {} beyond the horizon envelope",
        age.max()
    );

    // Determinism: same plan, same cluster, same histogram — exactly.
    let (stats2, age2) = run();
    assert_eq!(stats, stats2, "storm stats not reproducible");
    assert_eq!(age, age2, "storm staleness histogram not reproducible");
}
