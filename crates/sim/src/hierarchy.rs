//! Two-level (hierarchical) conservative-lookahead execution.
//!
//! [`crate::run_epochs`] advances a flat set of nodes under one shared
//! lookahead window. A *bridged* topology — several bus segments joined
//! by store-and-forward gateways — has two very different interaction
//! latencies: nodes on one segment interact within one bus-frame time,
//! but traffic can only cross a gateway after its forwarding latency.
//! That gap is exploitable lookahead: each segment's sub-executive may
//! run an entire *inter-segment* epoch (one gateway latency) of its own
//! fine-grained *intra-segment* epochs without observing any input from
//! another segment.
//!
//! [`run_two_level`] is that composition: the outer engine is
//! [`run_epochs`] over [`EpochGroup`]s (one per segment), each group's
//! `advance_group` runs its own serial inner epoch loop, and the outer
//! exchange moves frames between groups at inter-segment barriers. The
//! determinism argument stacks: inner loops are serial per group and
//! touch only group-local state, groups share nothing between outer
//! barriers, and the outer exchange is serial in group order — so the
//! result is bit-for-bit identical for any outer worker count.
//!
//! Both levels inherit [`run_epochs`]'s synchronization machinery
//! wholesale: outer workers cross the hybrid spin-then-park barrier
//! once per inter-segment epoch (the fused leader/follower crossing),
//! and each segment's inner loop batches provably-quiet grid points
//! through its own bus's adaptive next-barrier proposals.
//!
//! The outer exchange may return next-barrier proposals of its own —
//! the same contract as [`run_epochs`]: `Some(t)` schedules the next
//! *inter-group* barrier at `t` (clamped to the horizon) instead of
//! one fixed lookahead out, letting a topology executive batch outer
//! barriers across windows where every group is provably idle and no
//! inter-group transfer comes due. Soundness is the caller's burden,
//! exactly as at the inner level: a proposal asserts that no group
//! needs an exchange before `t`. In a gateway topology that means the
//! proposal must never overshoot the earliest instant any forwarding
//! buffer releases a frame — equivalently, the outer cadence (fixed
//! or stretched) must respect the cheapest *surviving* forwarding
//! path, since a re-route can only shift traffic onto paths at least
//! as cheap as the global latency minimum the cadence is derived
//! from. Proposals change which barrier instants exist, not what any
//! group computes between them, so determinism across outer worker
//! counts is preserved verbatim.

use crate::cluster::{run_epochs, EpochConfig, EpochNode, EpochStats};
use crate::time::Time;

/// A self-contained sub-executive (e.g. one bus segment and its nodes)
/// that can advance its own virtual clock to an inter-group barrier
/// without external input. Implementations must be deterministic: the
/// post-state may depend only on the pre-state and the horizon.
pub trait EpochGroup: Send {
    /// Advances the group's local clock to `horizon`, running its own
    /// inner epoch loop, and returns that loop's cost accounting.
    fn advance_group(&mut self, horizon: Time) -> EpochStats;
}

/// Cost accounting of one [`run_two_level`] call, split by level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoLevelStats {
    /// The outer (inter-group) engine: barriers are inter-group
    /// exchanges, serial nanoseconds are gateway-transfer time.
    pub outer: EpochStats,
    /// Summed inner (intra-group) loops across every group and epoch.
    pub inner: EpochStats,
}

impl TwoLevelStats {
    /// Accumulates another call's stats (for split runs).
    pub fn merge(&mut self, other: &TwoLevelStats) {
        self.outer.merge(&other.outer);
        self.inner.merge(&other.inner);
    }
}

/// Adapter: lets the outer [`run_epochs`] drive a group as a node
/// while collecting the inner loops' stats.
struct GroupCell<G> {
    group: G,
    inner: EpochStats,
}

impl<G: EpochGroup> EpochNode for GroupCell<G> {
    fn advance_to(&mut self, horizon: Time) {
        let s = self.group.advance_group(horizon);
        self.inner.merge(&s);
    }
}

/// Advances `groups` from `from` to `horizon` in outer epochs of
/// `cfg.lookahead` (the inter-group latency), running each group's own
/// inner epoch loop in parallel between outer barriers and invoking
/// `exchange` serially at every barrier with in-order access to all
/// groups. The exchange may return a next-barrier proposal exactly as
/// in [`run_epochs`].
///
/// # Panics
///
/// Panics on a zero outer lookahead or a non-advancing proposal.
pub fn run_two_level<G, X>(
    groups: &mut Vec<G>,
    from: Time,
    horizon: Time,
    cfg: &EpochConfig,
    exchange: &mut X,
) -> TwoLevelStats
where
    G: EpochGroup,
    X: FnMut(&mut [&mut G], Time) -> Option<Time>,
{
    let mut cells: Vec<GroupCell<G>> = groups
        .drain(..)
        .map(|group| GroupCell {
            group,
            inner: EpochStats::default(),
        })
        .collect();
    // Reused across outer barriers: the adapter slice is rebuilt each
    // exchange but never reallocates once warmed.
    let mut scratch: Vec<*mut G> = Vec::with_capacity(cells.len());
    let outer = run_epochs(&mut cells, from, horizon, cfg, &mut |cells, at| {
        scratch.clear();
        scratch.extend(cells.iter_mut().map(|c| &mut c.group as *mut G));
        // SAFETY: the pointers address distinct groups behind the
        // exclusive `cells` slice handed to this closure; the re-cast
        // slice dies at the end of the exchange call.
        let refs = unsafe {
            std::slice::from_raw_parts_mut(scratch.as_mut_ptr().cast::<&mut G>(), scratch.len())
        };
        exchange(refs, at)
    });
    let mut inner = EpochStats::default();
    for cell in cells {
        inner.merge(&cell.inner);
        groups.push(cell.group);
    }
    TwoLevelStats { outer, inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// A toy group: a serial inner loop over `ticks`-sized steps that
    /// logs every inner boundary, plus an inbox of values handed over
    /// at outer exchanges.
    struct Probe {
        cursor: Time,
        step: Duration,
        boundaries: Vec<Time>,
        inbox: u64,
    }

    impl EpochGroup for Probe {
        fn advance_group(&mut self, horizon: Time) -> EpochStats {
            let mut stats = EpochStats::default();
            while self.cursor < horizon {
                self.cursor = horizon.min(self.cursor + self.step);
                self.boundaries.push(self.cursor);
                stats.barriers += 1;
            }
            stats
        }
    }

    fn run(workers: usize, n: usize) -> Vec<(Vec<Time>, u64)> {
        let mut groups: Vec<Probe> = (0..n)
            .map(|i| Probe {
                cursor: Time::ZERO,
                step: Duration::from_us(10 + i as u64),
                boundaries: Vec::new(),
                inbox: 0,
            })
            .collect();
        let cfg = EpochConfig {
            lookahead: Duration::from_us(100),
            workers,
        };
        let mut round = 0u64;
        let stats = run_two_level(
            &mut groups,
            Time::ZERO,
            Time::from_us(450),
            &cfg,
            &mut |groups, at| {
                round += 1;
                for g in groups.iter_mut() {
                    g.inbox += at.as_ns() + round;
                }
                None
            },
        );
        assert_eq!(stats.outer.barriers, 5);
        assert!(stats.inner.barriers > 0);
        groups
            .into_iter()
            .map(|g| (g.boundaries, g.inbox))
            .collect()
    }

    #[test]
    fn inner_loops_advance_between_outer_barriers() {
        let out = run(1, 2);
        // Group 0 steps 10 µs at a time inside 100 µs outer epochs:
        // every inner boundary lands on a multiple of 10 µs and the
        // last one is the 450 µs horizon.
        assert_eq!(out[0].0.len(), 45);
        assert_eq!(*out[0].0.last().unwrap(), Time::from_us(450));
        // Group 1 (11 µs steps) truncates each inner loop at the outer
        // barrier, so boundaries include every outer barrier instant.
        for k in 1..=4u64 {
            assert!(out[1].0.contains(&Time::from_us(k * 100)));
        }
    }

    #[test]
    fn outer_worker_count_does_not_change_results() {
        let base = run(1, 5);
        for workers in [2, 4] {
            assert_eq!(run(workers, 5), base, "workers={workers}");
        }
    }

    /// Runs with an exchange that stretches the early outer epochs,
    /// returning each group's inner boundaries plus the barrier count.
    fn run_stretched(workers: usize) -> (Vec<Vec<Time>>, u64) {
        let mut groups: Vec<Probe> = (0..3)
            .map(|i| Probe {
                cursor: Time::ZERO,
                step: Duration::from_us(10 + i as u64),
                boundaries: Vec::new(),
                inbox: 0,
            })
            .collect();
        let cfg = EpochConfig {
            lookahead: Duration::from_us(100),
            workers,
        };
        let stats = run_two_level(
            &mut groups,
            Time::ZERO,
            Time::from_us(1000),
            &cfg,
            &mut |groups, at| {
                for g in groups.iter_mut() {
                    g.inbox += 1;
                }
                // "Quiet" until 400 µs: the first exchange proposes
                // the barrier covering that window; later ones keep
                // the fixed cadence.
                (at < Time::from_us(300)).then(|| Time::from_us(400))
            },
        );
        (
            groups.into_iter().map(|g| g.boundaries).collect(),
            stats.outer.barriers,
        )
    }

    #[test]
    fn exchange_proposals_stretch_outer_epochs() {
        let (bounds, barriers) = run_stretched(1);
        // Fixed cadence would cross 10 outer barriers; the stretch
        // from 100 µs straight to 400 µs removes two of them.
        assert_eq!(barriers, 8);
        // Group 1 (11 µs steps) truncates its inner loop at every
        // outer barrier: 400 µs is a boundary, the skipped barriers
        // at 200/300 µs are not.
        assert!(bounds[1].contains(&Time::from_us(400)));
        assert!(!bounds[1].contains(&Time::from_us(200)));
        assert!(!bounds[1].contains(&Time::from_us(300)));
        assert_eq!(*bounds[1].last().unwrap(), Time::from_us(1000));
        // Stretched outer proposals stay worker-count invariant.
        for workers in [2, 4] {
            assert_eq!(run_stretched(workers), (bounds.clone(), barriers));
        }
    }
}
