//! Cross-crate validation: the offline schedulability tests of
//! `emeralds-sched` are *safe* with respect to the executing kernel of
//! `emeralds-core` — a workload the analysis accepts (with the same
//! calibrated overhead model) never misses a deadline when actually
//! run.
//!
//! This is the load-bearing link for Figures 3–5: breakdown
//! utilizations are computed analytically, so the analysis must never
//! overpromise relative to the kernel it models.

use emeralds::core::kernel::{KernelBuilder, KernelConfig};
use emeralds::core::script::Script;
use emeralds::core::SchedPolicy;
use emeralds::hal::CostModel;
use emeralds::sched::analysis::AnalysisLimits;
use emeralds::sched::partition::{find_partition, test_partition};
use emeralds::sched::{
    edf_test, rm_test, InflatedTask, OverheadModel, SearchStrategy, TaskSet, TestOutcome,
    WorkloadParams,
};
use emeralds::sim::{Duration, SimRng, Time};

fn build_kernel(ts: &TaskSet, policy: SchedPolicy) -> emeralds::core::Kernel {
    let mut b = KernelBuilder::new(KernelConfig {
        policy,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process("w");
    for t in ts.tasks() {
        b.add_periodic_task(
            p,
            format!("t{}", t.id),
            t.period,
            Script::compute_only(t.wcet),
        );
    }
    b.build()
}

/// Simulation horizon: a few times the longest period (full
/// hyperperiods are astronomically long for random millisecond
/// periods).
fn horizon(ts: &TaskSet) -> Time {
    Time::ZERO + ts.max_period() * 4 + Duration::from_ms(50)
}

fn workloads(count: usize, n: usize, seed: u64, util: f64) -> Vec<TaskSet> {
    let mut rng = SimRng::seeded(seed);
    (0..count)
        .map(|_| {
            WorkloadParams {
                n,
                period_divisor: 2,
                base_utilization: util,
            }
            .generate(&mut rng)
        })
        .collect()
}

#[test]
fn edf_analysis_is_safe_against_the_kernel() {
    let ovh = OverheadModel::new(CostModel::mc68040_25mhz());
    for (i, ts) in workloads(8, 8, 11, 0.8).into_iter().enumerate() {
        let o = ovh.edf_per_period(ts.len());
        let inflated: Vec<InflatedTask> = ts
            .tasks()
            .iter()
            .map(|t| InflatedTask::new(t.period, t.deadline, t.wcet + o))
            .collect();
        if edf_test(&inflated) == TestOutcome::Schedulable {
            let mut k = build_kernel(&ts, SchedPolicy::Edf);
            k.run_until(horizon(&ts));
            assert_eq!(
                k.total_deadline_misses(),
                0,
                "workload {i}: EDF analysis accepted but the kernel missed"
            );
        }
    }
}

#[test]
fn rm_analysis_is_safe_against_the_kernel() {
    let ovh = OverheadModel::new(CostModel::mc68040_25mhz());
    for (i, ts) in workloads(8, 8, 23, 0.75).into_iter().enumerate() {
        let o = ovh.rmq_per_period(ts.len());
        let inflated: Vec<InflatedTask> = ts
            .tasks()
            .iter()
            .map(|t| InflatedTask::new(t.period, t.deadline, t.wcet + o))
            .collect();
        if rm_test(&inflated) == TestOutcome::Schedulable {
            let mut k = build_kernel(&ts, SchedPolicy::RmQueue);
            k.run_until(horizon(&ts));
            assert_eq!(
                k.total_deadline_misses(),
                0,
                "workload {i}: RM analysis accepted but the kernel missed"
            );
        }
    }
}

#[test]
fn csd_band_analysis_is_safe_against_the_kernel() {
    let ovh = OverheadModel::new(CostModel::mc68040_25mhz());
    let limits = AnalysisLimits::default();
    let mut accepted = 0;
    for (i, ts) in workloads(10, 10, 37, 0.8).into_iter().enumerate() {
        let Some(p) = find_partition(&ts, 2, &ovh, &SearchStrategy::TroublesomeRule, limits) else {
            continue;
        };
        assert_eq!(
            test_partition(&ts, &p, &ovh, limits),
            TestOutcome::Schedulable
        );
        accepted += 1;
        let boundaries = p.boundaries().to_vec();
        let mut k = build_kernel(&ts, SchedPolicy::Csd { boundaries });
        k.run_until(horizon(&ts));
        assert_eq!(
            k.total_deadline_misses(),
            0,
            "workload {i}: CSD band analysis accepted but the kernel missed"
        );
    }
    assert!(
        accepted >= 5,
        "too few accepted workloads ({accepted}) to be meaningful"
    );
}

/// The converse sanity: the exact RM analysis *rejects* the Table 2
/// workload, and the kernel indeed misses — the tests are not
/// vacuously conservative.
#[test]
fn rm_rejection_matches_an_actual_miss() {
    let specs: &[(u64, u64)] = &[
        (4, 1_000),
        (5, 1_000),
        (6, 1_000),
        (7, 900),
        (9, 300),
        (50, 2_200),
        (60, 1_600),
        (100, 1_500),
        (200, 2_000),
        (400, 2_200),
    ];
    let ts = TaskSet::new(
        specs
            .iter()
            .enumerate()
            .map(|(i, &(p, c))| {
                emeralds::sched::Task::new(i, Duration::from_ms(p), Duration::from_us(c))
            })
            .collect(),
    );
    let inflated: Vec<InflatedTask> = ts
        .tasks()
        .iter()
        .map(|t| InflatedTask::new(t.period, t.deadline, t.wcet))
        .collect();
    assert_eq!(rm_test(&inflated), TestOutcome::Unschedulable);
    let mut k = build_kernel(&ts, SchedPolicy::RmQueue);
    assert!(k.run_until_miss(Time::from_ms(100)));
}
