//! Semaphores with priority inheritance (§6).
//!
//! EMERALDS provides *full* semaphore semantics — no relaxation — and
//! gets its speedup from two implementation ideas:
//!
//! 1. **Context-switch elimination** (§6.2): the blocking call
//!    preceding `acquire_sem()` carries the identifier of the
//!    semaphore about to be locked (inserted by the code parser,
//!    §6.2.1). When the kernel is about to unblock a thread whose next
//!    lock target is already held, it performs priority inheritance
//!    *early* and leaves the thread blocked on the semaphore, so the
//!    wake → run → block → switch sequence collapses into a single
//!    switch to the lock holder.
//! 2. **O(1) priority inheritance on the FP queue** (§6.2): the holder
//!    is inserted directly ahead of the donor (no walk), and the
//!    *blocked donor itself* acts as a placeholder marking the
//!    holder's original position, so restoration is a second O(1)
//!    swap. A third thread with higher priority replaces the
//!    placeholder (§6.2, "one extra step").
//!
//! The §6.3.1 modification adds a *pre-lock queue* per semaphore:
//! threads past their pre-acquire blocking call but not yet holding
//! the lock. When one of them locks, the rest are blocked; when the
//! lock is released they are released too. This turns "case B"
//! (higher-priority thread takes the lock first) into "case A".

use emeralds_sim::{SemId, ThreadId};

/// Which semaphore implementation a kernel uses (ablation switch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemScheme {
    /// Textbook PI semaphore: inheritance on `acquire`, full queue
    /// walks for FP repositioning, two context switches per contended
    /// acquire/release pair (§6.1).
    Standard,
    /// The EMERALDS scheme described above.
    Emeralds,
}

/// A kernel semaphore (binary mutex or counting).
#[derive(Clone, Debug)]
pub struct Semaphore {
    pub id: SemId,
    /// Remaining permits. Mutex semantics when `max_count == 1`.
    pub count: u32,
    pub max_count: u32,
    /// Current holder (mutex mode only; counting semaphores do not do
    /// priority inheritance).
    pub holder: Option<ThreadId>,
    /// Blocked waiters in grant order (kernel keeps this sorted by
    /// priority key at insertion).
    pub waiters: Vec<ThreadId>,
    /// §6.3.1 pre-lock queue: threads whose pre-acquire blocking call
    /// has completed but which do not hold the lock yet. The `bool`
    /// marks members the kernel has re-blocked because another member
    /// took the lock.
    pub prelock: Vec<(ThreadId, bool)>,
    /// The donor currently acting as the holder's FP-queue placeholder
    /// (EMERALDS scheme).
    pub placeholder: Option<ThreadId>,
    /// Set while the holder runs with an inherited priority (used to
    /// undo inheritance exactly once).
    pub inherited: bool,
}

impl Semaphore {
    /// Creates a mutex (binary semaphore with PI).
    pub fn mutex(id: SemId) -> Semaphore {
        Semaphore {
            id,
            count: 1,
            max_count: 1,
            holder: None,
            waiters: Vec::new(),
            prelock: Vec::new(),
            placeholder: None,
            inherited: false,
        }
    }

    /// Creates a counting semaphore with `permits` initial permits.
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn counting(id: SemId, permits: u32) -> Semaphore {
        assert!(permits > 0, "counting semaphore needs permits");
        Semaphore {
            id,
            count: permits,
            max_count: permits,
            holder: None,
            waiters: Vec::new(),
            prelock: Vec::new(),
            placeholder: None,
            inherited: false,
        }
    }

    /// True for mutex-mode semaphores (PI applies).
    pub fn is_mutex(&self) -> bool {
        self.max_count == 1
    }

    /// True if a permit is available.
    pub fn available(&self) -> bool {
        self.count > 0
    }

    /// Takes a permit.
    ///
    /// # Panics
    ///
    /// Panics if none is available (the kernel checks first).
    pub fn take(&mut self, tid: ThreadId) {
        assert!(self.count > 0, "{}: no permit available", self.id);
        self.count -= 1;
        if self.is_mutex() {
            self.holder = Some(tid);
        }
    }

    /// Returns a permit (mutex: clears the holder).
    ///
    /// # Panics
    ///
    /// Panics on over-release (count would exceed the maximum).
    pub fn put(&mut self) {
        assert!(self.count < self.max_count, "{}: over-release", self.id);
        self.count += 1;
        self.holder = None;
    }

    /// Inserts `tid` into the wait queue before the first waiter with
    /// a larger key (priority order; FIFO among equals).
    pub fn enqueue_waiter(&mut self, tid: ThreadId, key: u128, key_of: impl Fn(ThreadId) -> u128) {
        debug_assert!(!self.waiters.contains(&tid));
        let pos = self
            .waiters
            .iter()
            .position(|&w| key_of(w) > key)
            .unwrap_or(self.waiters.len());
        self.waiters.insert(pos, tid);
    }

    /// Removes and returns the highest-priority waiter.
    pub fn pop_waiter(&mut self) -> Option<ThreadId> {
        if self.waiters.is_empty() {
            None
        } else {
            Some(self.waiters.remove(0))
        }
    }

    /// Adds a thread to the pre-lock queue (not yet re-blocked).
    pub fn prelock_add(&mut self, tid: ThreadId) {
        if !self.prelock.iter().any(|&(t, _)| t == tid) {
            self.prelock.push((tid, false));
        }
    }

    /// Removes a thread from the pre-lock queue (it acquired the lock
    /// or moved on to a different call).
    pub fn prelock_remove(&mut self, tid: ThreadId) {
        self.prelock.retain(|&(t, _)| t != tid);
    }

    /// True if `tid` is in the pre-lock queue.
    pub fn in_prelock(&self, tid: ThreadId) -> bool {
        self.prelock.iter().any(|&(t, _)| t == tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_take_put_cycle() {
        let mut s = Semaphore::mutex(SemId(0));
        assert!(s.available());
        s.take(ThreadId(1));
        assert!(!s.available());
        assert_eq!(s.holder, Some(ThreadId(1)));
        s.put();
        assert!(s.available());
        assert_eq!(s.holder, None);
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let mut s = Semaphore::mutex(SemId(0));
        s.put();
    }

    #[test]
    fn counting_semaphore_permits() {
        let mut s = Semaphore::counting(SemId(1), 3);
        assert!(!s.is_mutex());
        s.take(ThreadId(0));
        s.take(ThreadId(1));
        assert!(s.available());
        s.take(ThreadId(2));
        assert!(!s.available());
        s.put();
        assert!(s.available());
    }

    #[test]
    fn wait_queue_is_priority_ordered_fifo_on_ties() {
        let mut s = Semaphore::mutex(SemId(0));
        let keys = [5u128, 3, 5, 1];
        let key_of = |t: ThreadId| keys[t.index()];
        s.enqueue_waiter(ThreadId(0), 5, key_of);
        s.enqueue_waiter(ThreadId(1), 3, key_of);
        s.enqueue_waiter(ThreadId(2), 5, key_of);
        s.enqueue_waiter(ThreadId(3), 1, key_of);
        assert_eq!(s.pop_waiter(), Some(ThreadId(3)));
        assert_eq!(s.pop_waiter(), Some(ThreadId(1)));
        assert_eq!(s.pop_waiter(), Some(ThreadId(0))); // FIFO among 5s
        assert_eq!(s.pop_waiter(), Some(ThreadId(2)));
        assert_eq!(s.pop_waiter(), None);
    }

    #[test]
    fn prelock_membership() {
        let mut s = Semaphore::mutex(SemId(0));
        s.prelock_add(ThreadId(7));
        s.prelock_add(ThreadId(7)); // idempotent
        assert!(s.in_prelock(ThreadId(7)));
        assert_eq!(s.prelock.len(), 1);
        s.prelock_remove(ThreadId(7));
        assert!(!s.in_prelock(ThreadId(7)));
    }
}
