//! Fixed-block kernel memory pools.
//!
//! Small-memory RTOSs avoid general heaps: kernel objects come from
//! statically sized pools so allocation is O(1), fragmentation-free,
//! and the worst-case RAM budget is known at build time (§2–3: all
//! ROM/RAM is on-chip, tens of kilobytes). The simulated kernel draws
//! every object from a [`PoolSet`] and the footprint report reads the
//! high-water marks.

use std::fmt;

/// One fixed-block pool.
#[derive(Clone, Debug)]
pub struct Pool {
    pub name: &'static str,
    pub block_bytes: usize,
    pub capacity: usize,
    allocated: usize,
    high_water: usize,
}

impl Pool {
    /// Creates a pool of `capacity` blocks of `block_bytes` each.
    pub fn new(name: &'static str, block_bytes: usize, capacity: usize) -> Pool {
        Pool {
            name,
            block_bytes,
            capacity,
            allocated: 0,
            high_water: 0,
        }
    }

    /// Takes one block.
    ///
    /// # Panics
    ///
    /// Panics when the pool is exhausted — on the real system that is
    /// a build-time sizing error, so the simulation treats it as fatal.
    pub fn alloc(&mut self) {
        assert!(
            self.allocated < self.capacity,
            "kernel pool '{}' exhausted ({} blocks)",
            self.name,
            self.capacity
        );
        self.allocated += 1;
        self.high_water = self.high_water.max(self.allocated);
    }

    /// Returns one block.
    ///
    /// # Panics
    ///
    /// Panics on double-free (more frees than allocations).
    pub fn free(&mut self) {
        assert!(self.allocated > 0, "pool '{}' double free", self.name);
        self.allocated -= 1;
    }

    /// Blocks currently in use.
    pub fn in_use(&self) -> usize {
        self.allocated
    }

    /// Peak blocks ever in use.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total reserved RAM for this pool.
    pub fn reserved_bytes(&self) -> usize {
        self.block_bytes * self.capacity
    }

    /// RAM actually needed at the observed peak.
    pub fn peak_bytes(&self) -> usize {
        self.block_bytes * self.high_water
    }
}

/// The kernel's object pools.
#[derive(Clone, Debug)]
pub struct PoolSet {
    pub tcbs: Pool,
    pub sems: Pool,
    pub condvars: Pool,
    pub mailboxes: Pool,
    pub statemsgs: Pool,
    pub regions: Pool,
    pub timers: Pool,
}

impl PoolSet {
    /// Pool sizes typical of the paper's target applications (§2: tens
    /// of concurrent tasks).
    pub fn small_memory_defaults() -> PoolSet {
        PoolSet {
            // Block sizes model the 68k-era object layouts.
            tcbs: Pool::new("tcb", 128, 64),
            sems: Pool::new("semaphore", 32, 64),
            condvars: Pool::new("condvar", 24, 32),
            mailboxes: Pool::new("mailbox", 64, 32),
            statemsgs: Pool::new("statemsg", 32, 64),
            regions: Pool::new("region", 16, 64),
            timers: Pool::new("timer", 24, 128),
        }
    }

    /// All pools, for reports.
    pub fn all(&self) -> [&Pool; 7] {
        [
            &self.tcbs,
            &self.sems,
            &self.condvars,
            &self.mailboxes,
            &self.statemsgs,
            &self.regions,
            &self.timers,
        ]
    }

    /// Total reserved kernel-object RAM.
    pub fn reserved_bytes(&self) -> usize {
        self.all().iter().map(|p| p.reserved_bytes()).sum()
    }

    /// Total peak kernel-object RAM.
    pub fn peak_bytes(&self) -> usize {
        self.all().iter().map(|p| p.peak_bytes()).sum()
    }
}

impl fmt::Display for PoolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>6} {:>6} {:>6} {:>10} {:>10}",
            "pool", "block", "cap", "peak", "reserved", "peak RAM"
        )?;
        for p in self.all() {
            writeln!(
                f,
                "{:<12} {:>6} {:>6} {:>6} {:>9}B {:>9}B",
                p.name,
                p.block_bytes,
                p.capacity,
                p.high_water(),
                p.reserved_bytes(),
                p.peak_bytes()
            )?;
        }
        write!(
            f,
            "total reserved {}B, peak {}B",
            self.reserved_bytes(),
            self.peak_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_high_water() {
        let mut p = Pool::new("x", 32, 4);
        p.alloc();
        p.alloc();
        p.alloc();
        p.free();
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.high_water(), 3);
        assert_eq!(p.peak_bytes(), 96);
        assert_eq!(p.reserved_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_is_fatal() {
        let mut p = Pool::new("x", 8, 1);
        p.alloc();
        p.alloc();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_fatal() {
        let mut p = Pool::new("x", 8, 1);
        p.free();
    }

    #[test]
    fn pool_set_totals_and_display() {
        let mut ps = PoolSet::small_memory_defaults();
        ps.tcbs.alloc();
        ps.sems.alloc();
        assert!(ps.reserved_bytes() > 10_000);
        assert_eq!(ps.peak_bytes(), 128 + 32);
        let s = ps.to_string();
        assert!(s.contains("tcb"));
        assert!(s.contains("total reserved"));
    }
}
