//! Determinism and conservation pins for the bridged multi-segment
//! topology executive.
//!
//! The two-level engine promises the same invisibility the flat
//! cluster does, one level up: the same topology advanced with 1, 4,
//! or `available_parallelism` *outer* workers produces bit-for-bit
//! identical per-node traces, metrics, bus stats, and gateway stats —
//! and the cross-segment frame ledger balances at every rest point,
//! with gateway-buffered frames as the only carry term.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use emeralds::core::kernel::{Kernel, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Script};
use emeralds::core::SchedPolicy;
use emeralds::faults::FaultPlan;
use emeralds::fieldbus::{wide_tag, GatewayConfig, GatewayId, SegmentId, TopoEventKind, Topology};
use emeralds::sim::{Duration, IrqLine, MboxId, NodeId, SimRng, Time};

const NIC_IRQ: IrqLine = IrqLine(2);

fn hash_of(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Outer worker counts to compare against the 1-worker base: 4 and
/// the host's parallelism, plus anything listed in `EMERALDS_WORKERS`
/// (comma-separated) — CI's determinism matrix sets that to pin
/// parity at the counts its runners actually have.
fn worker_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![4, host];
    if let Ok(extra) = std::env::var("EMERALDS_WORKERS") {
        counts.extend(
            extra
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok()),
        );
    }
    counts.retain(|&w| w >= 1);
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// A traced node sending wide-addressed frames to a (global) peer on
/// a jittered period, draining its RX mailbox.
fn traced_node(i: usize, dst: NodeId, rng: &mut SimRng) -> (Kernel, MboxId, MboxId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![1],
        },
        record_trace: true,
        ..KernelConfig::default()
    });
    let p = b.add_process(format!("node{i}"));
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(16);
    b.board_mut().add_nic("can", NIC_IRQ);
    b.add_periodic_task(
        p,
        "tx",
        Duration::from_us(rng.int_in(4_000, 9_000)),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(rng.int_in(100, 300))),
            Action::SendMbox {
                mbox: tx,
                bytes: 8,
                tag: wide_tag(Some(dst), i as u32),
            },
        ]),
    );
    b.add_driver_task(
        p,
        "nicdrv",
        Duration::from_ms(2),
        Script::looping(vec![
            Action::RecvMbox(rx),
            Action::Compute(Duration::from_us(40)),
        ]),
    );
    (b.build(), tx, rx)
}

/// A line of three segments, three app nodes each, bridged by two
/// gateways. Traffic mixes segment-local sends with cross-segment
/// sends into the next segment (app nodes are registered first, so
/// their global ids are 0..9 in registration order).
fn line_topology(workers: usize) -> Topology {
    const SEGS: usize = 3;
    const PER: usize = 3;
    let mut rng = SimRng::seeded(0x70B0);
    let mut t = Topology::new().with_workers(workers);
    let segs: Vec<SegmentId> = (0..SEGS).map(|_| t.add_segment(1_000_000)).collect();
    for (s, &seg) in segs.iter().enumerate() {
        for j in 0..PER {
            let i = s * PER + j;
            let mut nrng = rng.derive(i as u64);
            // Two of three nodes talk within the segment; the third
            // sends into the next segment over the gateway chain.
            let dst = if j == PER - 1 {
                NodeId((((s + 1) % SEGS) * PER) as u32)
            } else {
                NodeId((s * PER + (j + 1) % PER) as u32)
            };
            let (k, tx, rx) = traced_node(i, dst, &mut nrng);
            t.add_node(seg, format!("node{i}"), k, tx, rx, NIC_IRQ, (j + 1) as u32);
        }
    }
    t.add_gateway(segs[0], segs[1], GatewayConfig::default());
    t.add_gateway(segs[1], segs[2], GatewayConfig::default());
    t
}

fn observe(t: &Topology) -> (Vec<u64>, Vec<u64>) {
    let trace_hashes = (0..t.node_count() as u32)
        .map(|i| hash_of(&t.node(NodeId(i)).kernel.trace().to_jsonl()))
        .collect();
    let gw_stats = (0..t.gateway_count() as u32)
        .flat_map(|g| {
            let s = t.gateway_stats(GatewayId(g));
            [s.forwarded, s.dropped_overflow, s.peak_depth, s.buffered]
        })
        .collect();
    (trace_hashes, gw_stats)
}

#[test]
fn traces_and_ledgers_identical_across_outer_worker_counts() {
    let horizon = Time::from_ms(80);
    let mut base = line_topology(1);
    base.run_until(horizon);
    let base_obs = observe(&base);

    // The pin is nontrivial: local and cross-segment traffic flowed.
    let total = base.total_stats();
    assert!(total.frames_delivered > 20, "{total:?}");
    assert!(
        base.gateway_stats(GatewayId(0)).forwarded > 0
            && base.gateway_stats(GatewayId(1)).forwarded > 0,
        "gateways idle"
    );
    let report = base.conservation();
    assert!(report.holds(), "ledger {report:?}");
    assert_eq!(base.no_route_drops(), 0);

    for workers in worker_counts() {
        let mut t = line_topology(workers);
        t.run_until(horizon);
        let obs = observe(&t);
        assert_eq!(
            obs.0, base_obs.0,
            "trace hashes diverged at workers={workers}"
        );
        assert_eq!(
            obs.1, base_obs.1,
            "gateway stats diverged at workers={workers}"
        );
        assert_eq!(
            t.metrics(),
            base.metrics(),
            "metrics diverged at workers={workers}"
        );
        assert_eq!(
            t.total_stats(),
            base.total_stats(),
            "bus stats diverged at workers={workers}"
        );
        assert!(t.conservation().holds());
    }
}

/// The ledger must balance at *every* rest point, not only at a
/// drained horizon — including instants where frames sit buffered
/// inside a gateway (the `gateway_buffered` carry term).
#[test]
fn conservation_holds_at_staggered_horizons() {
    let mut t = line_topology(2);
    let mut saw_buffered = false;
    for step in [3u64, 7, 11, 16, 24, 40, 80] {
        t.run_until(Time::from_ms(step));
        let report = t.conservation();
        assert!(report.holds(), "ledger at {step} ms: {report:?}");
        saw_buffered |= report.gateway_buffered > 0;
    }
    // The staggered horizons actually exercised the carry term at
    // least once; otherwise this test pins nothing new.
    assert!(
        saw_buffered,
        "no rest point caught a frame inside a gateway"
    );
}

/// Split advancement across many `run_until` calls matches one
/// uninterrupted run when the boundaries land on the outer barrier
/// grid.
#[test]
fn split_runs_match_single_run() {
    let mut whole = line_topology(2);
    whole.set_inter_lookahead(Duration::from_ms(1));
    whole.run_until(Time::from_ms(48));

    let mut split = line_topology(2);
    split.set_inter_lookahead(Duration::from_ms(1));
    for step in 1..=4u64 {
        split.run_until(Time::from_ms(step * 12));
    }
    assert_eq!(whole.metrics(), split.metrics());
    assert_eq!(whole.total_stats(), split.total_stats());
    assert_eq!(observe(&whole), observe(&split));
}

/// Brute-force min-cost reference for the route table: collapse
/// parallel gateways to their cheapest edge, then Floyd–Warshall.
fn brute_force_costs(n: usize, edges: &[(u32, u32, u64)]) -> Vec<Vec<Option<u64>>> {
    let mut d: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
    for (s, row) in d.iter_mut().enumerate() {
        row[s] = Some(0);
    }
    for &(a, b, c) in edges {
        for (x, y) in [(a as usize, b as usize), (b as usize, a as usize)] {
            if d[x][y].is_none_or(|cur| c < cur) {
                d[x][y] = Some(c);
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let (Some(ik), Some(kj)) = (d[i][k], d[k][j]) else {
                    continue;
                };
                if d[i][j].is_none_or(|cur| ik + kj < cur) {
                    d[i][j] = Some(ik + kj);
                }
            }
        }
    }
    d
}

/// Hand-rolled property test: on random gateway graphs (parallel
/// edges, redundant rings, disconnected islands included), the
/// deterministic route table must agree with a brute-force
/// shortest-path reference on both reachability and cost, and every
/// chosen first hop must lie on an optimal path.
#[test]
fn route_tables_match_brute_force_on_random_graphs() {
    let mut rng = SimRng::seeded(0xD1D5_7A2B);
    for case in 0..80u64 {
        let mut r = rng.derive(case);
        let n = r.int_in(2, 6) as usize;
        let m = r.int_in(0, 9) as usize;
        let mut t = Topology::new();
        let segs: Vec<SegmentId> = (0..n).map(|_| t.add_segment(1_000_000)).collect();
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for _ in 0..m {
            let a = r.int_in(0, n as u64 - 1) as u32;
            let mut b = r.int_in(0, n as u64 - 2) as u32;
            if b >= a {
                b += 1;
            }
            let cost = r.int_in(1, 4);
            t.add_gateway(
                segs[a as usize],
                segs[b as usize],
                GatewayConfig {
                    cost,
                    ..GatewayConfig::default()
                },
            );
            edges.push((a, b, cost));
        }
        let reference = brute_force_costs(n, &edges);
        for s in 0..n {
            for dst in 0..n {
                assert_eq!(
                    t.route_cost(segs[s], segs[dst]),
                    reference[s][dst],
                    "case {case}: cost s{s}->s{dst} over {edges:?}"
                );
                if s == dst {
                    continue;
                }
                match t.first_hop(segs[s], segs[dst]) {
                    None => assert_eq!(reference[s][dst], None, "case {case}"),
                    Some(g) => {
                        let (a, b, cost) = edges[g.index()];
                        assert!(
                            a as usize == s || b as usize == s,
                            "case {case}: first hop gw{} does not touch s{s}",
                            g.index()
                        );
                        let other = if a as usize == s { b } else { a } as usize;
                        assert_eq!(
                            reference[other][dst].map(|c| c + cost),
                            reference[s][dst],
                            "case {case}: hop gw{} off the optimal path s{s}->s{dst}",
                            g.index()
                        );
                    }
                }
            }
        }
    }
}

/// Killing the only bridge to a segment partitions the graph: the
/// unreachable traffic is counted (`no_route`, charged to its origin
/// segment), the ledger balances through outage and recovery, and the
/// entire fault trajectory is bit-identical at 1/4/host outer
/// workers.
#[test]
fn gateway_fail_stop_partition_is_counted_and_deterministic() {
    let horizon = Time::from_ms(80);
    let plan =
        FaultPlan::new(0x9A7E).gateway_fail_stop(1, Time::from_ms(20), Duration::from_ms(30));
    let run = |workers: usize| {
        let mut t = line_topology(workers);
        t.set_fault_plan(&plan);
        t.run_until(horizon);
        t
    };
    let mut base = run(1);
    // gw1 is the only path to s2: its outage cuts s2 off both ways.
    assert!(base.no_route_drops() > 0, "partition traffic uncounted");
    assert_eq!(base.gateway_stats(GatewayId(1)).outages, 1);
    assert!(base.reroutes() >= 2, "down + up rebuilds");
    assert!(base.events().iter().any(|e| e.kind
        == TopoEventKind::Reroute {
            unreachable_pairs: 4
        }));
    assert!(base
        .events()
        .iter()
        .any(|e| matches!(e.kind, TopoEventKind::GatewayDown { gateway: 1, .. })));
    assert!(base
        .events()
        .iter()
        .any(|e| e.kind == TopoEventKind::GatewayUp { gateway: 1 }));
    // Restarted by the horizon: the partition healed and traffic
    // resumed over the restored bridge.
    assert_eq!(base.partitioned_pairs(), 0);
    assert!(base.gateway_stats(GatewayId(1)).forwarded > 0);
    let report = base.conservation();
    assert!(report.holds(), "ledger {report:?}");
    let base_obs = observe(&base);

    for workers in worker_counts() {
        let mut t = run(workers);
        assert_eq!(observe(&t), base_obs, "workers={workers}");
        assert_eq!(t.events(), base.events(), "workers={workers}");
        assert_eq!(t.no_route_drops(), base.no_route_drops());
        assert_eq!(t.reroutes(), base.reroutes());
        assert_eq!(t.total_stats(), base.total_stats(), "workers={workers}");
        assert_eq!(t.metrics(), base.metrics(), "workers={workers}");
        assert_eq!(t.partitioned_pairs(), 0);
        assert!(t.conservation().holds());
    }
}
