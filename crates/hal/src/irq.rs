//! Prioritized interrupt controller.
//!
//! Models the 68k-style interrupt scheme the paper's platforms use:
//! numbered lines with fixed priorities (lower line number = higher
//! priority), a pending latch per line, per-line enables, and a global
//! interrupt mask the kernel raises inside critical sections.

use emeralds_sim::IrqLine;

/// Maximum number of interrupt lines on the simulated controller.
pub const MAX_IRQ_LINES: usize = 32;

/// A simple prioritized interrupt controller.
#[derive(Clone, Debug)]
pub struct InterruptController {
    pending: u32,
    enabled: u32,
    /// Global mask; when set, no interrupt is delivered.
    masked: bool,
    raised_count: [u64; MAX_IRQ_LINES],
}

impl InterruptController {
    /// Creates a controller with every line enabled and unmasked.
    pub fn new() -> Self {
        InterruptController {
            pending: 0,
            enabled: u32::MAX,
            masked: false,
            raised_count: [0; MAX_IRQ_LINES],
        }
    }

    fn bit(line: IrqLine) -> u32 {
        assert!(line.index() < MAX_IRQ_LINES, "IRQ line {line} out of range");
        1 << line.index()
    }

    /// Latches `line` pending (device side).
    pub fn raise(&mut self, line: IrqLine) {
        self.pending |= Self::bit(line);
        self.raised_count[line.index()] += 1;
    }

    /// Enables or disables delivery of `line`.
    pub fn set_enabled(&mut self, line: IrqLine, on: bool) {
        if on {
            self.enabled |= Self::bit(line);
        } else {
            self.enabled &= !Self::bit(line);
        }
    }

    /// Sets the global interrupt mask (kernel critical sections).
    pub fn set_masked(&mut self, masked: bool) {
        self.masked = masked;
    }

    /// True if the global mask is raised.
    pub fn is_masked(&self) -> bool {
        self.masked
    }

    /// The highest-priority deliverable interrupt, if any (lowest line
    /// number wins, matching 68k autovector priorities).
    pub fn pending_highest(&self) -> Option<IrqLine> {
        if self.masked {
            return None;
        }
        let deliverable = self.pending & self.enabled;
        if deliverable == 0 {
            None
        } else {
            Some(IrqLine(deliverable.trailing_zeros()))
        }
    }

    /// Acknowledges (clears) a pending line; the kernel calls this at
    /// the top of the first-level handler.
    pub fn ack(&mut self, line: IrqLine) {
        self.pending &= !Self::bit(line);
    }

    /// True if `line` is latched pending.
    pub fn is_pending(&self, line: IrqLine) -> bool {
        self.pending & Self::bit(line) != 0
    }

    /// How many times `line` has been raised since boot.
    pub fn raise_count(&self, line: IrqLine) -> u64 {
        self.raised_count[line.index()]
    }
}

impl Default for InterruptController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_ack_cycle() {
        let mut ic = InterruptController::new();
        assert_eq!(ic.pending_highest(), None);
        ic.raise(IrqLine(3));
        assert!(ic.is_pending(IrqLine(3)));
        assert_eq!(ic.pending_highest(), Some(IrqLine(3)));
        ic.ack(IrqLine(3));
        assert_eq!(ic.pending_highest(), None);
        assert_eq!(ic.raise_count(IrqLine(3)), 1);
    }

    #[test]
    fn priority_is_lowest_line_first() {
        let mut ic = InterruptController::new();
        ic.raise(IrqLine(7));
        ic.raise(IrqLine(2));
        ic.raise(IrqLine(5));
        assert_eq!(ic.pending_highest(), Some(IrqLine(2)));
        ic.ack(IrqLine(2));
        assert_eq!(ic.pending_highest(), Some(IrqLine(5)));
    }

    #[test]
    fn masking_defers_but_keeps_pending() {
        let mut ic = InterruptController::new();
        ic.set_masked(true);
        ic.raise(IrqLine(0));
        assert_eq!(ic.pending_highest(), None);
        assert!(ic.is_pending(IrqLine(0)));
        ic.set_masked(false);
        assert_eq!(ic.pending_highest(), Some(IrqLine(0)));
    }

    #[test]
    fn per_line_disable() {
        let mut ic = InterruptController::new();
        ic.set_enabled(IrqLine(1), false);
        ic.raise(IrqLine(1));
        assert_eq!(ic.pending_highest(), None);
        ic.set_enabled(IrqLine(1), true);
        assert_eq!(ic.pending_highest(), Some(IrqLine(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_out_of_range_panics() {
        let mut ic = InterruptController::new();
        ic.raise(IrqLine(32));
    }
}
