//! Locking-policy subsystem tests: the SRP/ceiling policy's classic
//! guarantees (acquire never blocks, each job is delayed at most once,
//! by at most one outer critical section of a worse-preemption-level
//! task), PI-vs-SRP metrics parity on contention-free workloads, and
//! the typed configuration errors that replace builder panics —
//! including build-time rejection of infeasible SRP resource graphs
//! and invalid `next_sem` hint overrides.

use emeralds::core::kernel::{ConfigError, Kernel, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Script};
use emeralds::core::{LockChoice, SchedPolicy, SemScheme};
use emeralds::sched::SrpGraphError;
use emeralds::sim::{Duration, SemId, SimRng, ThreadId, Time, TraceEvent};

fn ms(v: u64) -> Duration {
    Duration::from_ms(v)
}

fn us(v: u64) -> Duration {
    Duration::from_us(v)
}

fn cfg(lock: LockChoice) -> KernelConfig {
    KernelConfig {
        policy: SchedPolicy::RmQueue,
        sem_scheme: SemScheme::Emeralds,
        lock,
        ..KernelConfig::default()
    }
}

/// A randomized SRP-clean lock-sharing workload: `n` periodic tasks,
/// each wrapping one critical section on one of `num_sems` mutexes.
/// Returns the kernel, the tasks, each task's critical-section length,
/// and each task's mutex.
fn shared_lock_workload(
    lock: LockChoice,
    n: usize,
    num_sems: usize,
    seed: u64,
) -> (Kernel, Vec<ThreadId>, Vec<Duration>, Vec<SemId>) {
    let mut rng = SimRng::seeded(seed);
    let mut b = KernelBuilder::new(cfg(lock));
    let p = b.add_process("app");
    let sems: Vec<SemId> = (0..num_sems).map(|_| b.add_mutex()).collect();
    let mut tasks = Vec::new();
    let mut cs_len = Vec::new();
    let mut task_sem = Vec::new();
    for i in 0..n {
        let period = ms(rng.int_in(10, 30) + 5 * i as u64);
        let cs = us(rng.int_in(500, 2_000));
        let pre = us(rng.int_in(50, 400));
        let sem = sems[rng.index(num_sems)];
        tasks.push(b.add_periodic_task(
            p,
            format!("t{i}"),
            period,
            Script::periodic(vec![
                Action::Compute(pre),
                Action::AcquireSem(sem),
                Action::Compute(cs),
                Action::ReleaseSem(sem),
                Action::Compute(us(100)),
            ]),
        ));
        cs_len.push(cs);
        task_sem.push(sem);
    }
    (b.build(), tasks, cs_len, task_sem)
}

/// A contention-free workload: every task has a private mutex.
fn disjoint_lock_workload(lock: LockChoice, n: usize, seed: u64) -> (Kernel, Vec<ThreadId>) {
    let mut rng = SimRng::seeded(seed);
    let mut b = KernelBuilder::new(cfg(lock));
    let p = b.add_process("app");
    let mut tasks = Vec::new();
    for i in 0..n {
        let sem = b.add_mutex();
        let period = ms(rng.int_in(8, 25) + 4 * i as u64);
        tasks.push(b.add_periodic_task(
            p,
            format!("solo{i}"),
            period,
            Script::periodic(vec![
                Action::Compute(us(rng.int_in(100, 400))),
                Action::AcquireSem(sem),
                Action::Compute(us(rng.int_in(200, 900))),
                Action::ReleaseSem(sem),
            ]),
        ));
    }
    (b.build(), tasks)
}

/// The SRP blocking bound, pinned over random workloads: `acquire_sem`
/// never blocks, no task is deferred twice without an admission in
/// between (each job blocks at most once), and the highest-priority
/// task's deferral — which nothing can preempt-interfere with — lasts
/// at most the longest critical section of the worse-level tasks
/// sharing its mutex, plus kernel overhead.
#[test]
fn srp_blocking_bound_holds_across_random_workloads() {
    let mut total_defers = 0u64;
    for seed in 0..12u64 {
        let n = 4 + (seed as usize % 3);
        let (mut k, tasks, cs_len, task_sem) =
            shared_lock_workload(LockChoice::Srp, n, 2, 0x5150 + seed);
        k.run_until(Time::from_ms(250));
        let stats = k.srp_stats().expect("SRP kernel reports stats");
        assert_eq!(
            stats.unexpected_blocks, 0,
            "seed {seed}: SRP acquire blocked"
        );

        let top = *tasks
            .iter()
            .min_by_key(|&&t| k.tcb(t).rm_prio)
            .expect("non-empty");
        let bound: Duration = tasks
            .iter()
            .filter(|&&t| t != top && task_sem[t.index()] == task_sem[top.index()])
            .map(|&t| cs_len[t.index()])
            .max()
            .unwrap_or(Duration::ZERO);

        let mut open: Vec<Option<Time>> = vec![None; tasks.len()];
        for &(at, ref ev) in k.trace().events() {
            match *ev {
                TraceEvent::CeilingDefer { tid, .. } => {
                    assert!(
                        open[tid.index()].is_none(),
                        "seed {seed}: {tid} deferred twice without admission"
                    );
                    open[tid.index()] = Some(at);
                }
                TraceEvent::CeilingAdmit { tid } => {
                    if let Some(t0) = open[tid.index()].take() {
                        total_defers += 1;
                        if tid == top {
                            let waited = at.since(t0);
                            assert!(
                                waited <= bound + us(150),
                                "seed {seed}: top task deferred {waited} \
                                 against a {bound} outer section"
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // The property must have been exercised, not vacuously true.
    assert!(total_defers > 0, "no deferral ever happened");
}

/// On contention-free workloads the two policies are rivals in
/// overhead only: identical jobs, deadlines, and application CPU time.
#[test]
fn pi_and_srp_agree_on_contention_free_workloads() {
    for seed in [21u64, 22, 23] {
        let (mut pi, tasks) = disjoint_lock_workload(LockChoice::Pi, 5, seed);
        let (mut srp, _) = disjoint_lock_workload(LockChoice::Srp, 5, seed);
        pi.run_until(Time::from_ms(400));
        srp.run_until(Time::from_ms(400));
        for &t in &tasks {
            assert_eq!(
                pi.tcb(t).jobs_completed,
                srp.tcb(t).jobs_completed,
                "seed {seed}, {t}: job counts diverge"
            );
            assert_eq!(
                pi.tcb(t).deadline_misses,
                srp.tcb(t).deadline_misses,
                "seed {seed}, {t}: miss counts diverge"
            );
            assert_eq!(
                pi.tcb(t).cpu_time,
                srp.tcb(t).cpu_time,
                "seed {seed}, {t}: app time diverges"
            );
        }
        // Neither policy ever handed a lock to a blocked waiter: the
        // locks are private, so all acquires are uncontended. (SRP may
        // still *defer* wake-ups — its admission test is static and
        // cannot know a waking task avoids the held lock — but that
        // only shifts lower-priority dispatch within slack, which the
        // per-task equalities above pin.)
        assert_eq!(pi.counters().sem_handed_over, 0, "seed {seed}");
        assert_eq!(srp.counters().sem_handed_over, 0, "seed {seed}");
        let s = srp.srp_stats().expect("SRP stats");
        assert_eq!(s.unexpected_blocks, 0, "seed {seed}");
    }
}

/// Mutual exclusion holds under SRP exactly as under PI.
#[test]
fn srp_preserves_mutual_exclusion() {
    for seed in [31u64, 32, 33] {
        let (mut k, _, _, sems) = shared_lock_workload(LockChoice::Srp, 6, 2, seed);
        k.run_until(Time::from_ms(300));
        for &s in &sems {
            let mut holder: Option<ThreadId> = None;
            for (at, ev) in k.trace().events() {
                match ev {
                    TraceEvent::SemAcquired { tid, sem } if *sem == s => {
                        assert!(holder.is_none(), "{s}: double hold at {at}");
                        holder = Some(*tid);
                    }
                    TraceEvent::SemReleased { tid, sem } if *sem == s => {
                        assert_eq!(holder, Some(*tid), "{s}: bad release at {at}");
                        holder = None;
                    }
                    _ => {}
                }
            }
        }
    }
}

// --- Typed configuration errors ---------------------------------------

#[test]
fn unknown_semaphore_in_script_is_rejected() {
    let mut b = KernelBuilder::new(cfg(LockChoice::Pi));
    let p = b.add_process("app");
    b.add_periodic_task(
        p,
        "bad",
        ms(10),
        Script::periodic(vec![Action::AcquireSem(SemId(5)), Action::Compute(us(10))]),
    );
    match b.try_build() {
        Err(ConfigError::UnknownSemaphore { task, action, sem }) => {
            assert_eq!(task, ThreadId(0));
            assert_eq!(action, 0);
            assert_eq!(sem, SemId(5));
        }
        other => panic!("expected UnknownSemaphore, got {other:?}"),
    }
}

#[test]
fn csd_boundary_beyond_task_count_is_a_typed_error() {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![4],
        },
        ..KernelConfig::default()
    });
    let p = b.add_process("app");
    b.add_periodic_task(p, "t", ms(10), Script::compute_only(us(100)));
    let err = b.try_build().expect_err("boundary 4 with 1 task");
    assert_eq!(
        err,
        ConfigError::CsdBoundary {
            boundary: 4,
            tasks: 1
        }
    );
    // The panic path keeps its historical message prefix.
    assert!(err.to_string().contains("CSD boundary beyond task count"));
}

#[test]
fn counting_semaphore_under_srp_is_rejected() {
    let mut b = KernelBuilder::new(cfg(LockChoice::Srp));
    let p = b.add_process("app");
    let c = b.add_counting_sem(2);
    b.add_periodic_task(
        p,
        "consumer",
        ms(10),
        Script::periodic(vec![Action::AcquireSem(c), Action::Compute(us(10))]),
    );
    match b.try_build() {
        Err(ConfigError::SrpCountingSem { sem, .. }) => assert_eq!(sem, c),
        other => panic!("expected SrpCountingSem, got {other:?}"),
    }
}

#[test]
fn condvar_under_srp_is_rejected() {
    let mut b = KernelBuilder::new(cfg(LockChoice::Srp));
    let p = b.add_process("app");
    let m = b.add_mutex();
    let cv = b.add_condvar();
    b.add_periodic_task(
        p,
        "waiter",
        ms(10),
        Script::periodic(vec![
            Action::AcquireSem(m),
            Action::CondWait(cv, m),
            Action::ReleaseSem(m),
        ]),
    );
    assert!(matches!(b.try_build(), Err(ConfigError::SrpCondVar { .. })));
}

#[test]
fn srp_lock_order_cycle_is_rejected_at_build_time() {
    let mut b = KernelBuilder::new(cfg(LockChoice::Srp));
    let p = b.add_process("app");
    let a = b.add_mutex();
    let c = b.add_mutex();
    // Opposite nesting orders: a classic deadlock-prone graph.
    b.add_periodic_task(
        p,
        "ab",
        ms(10),
        Script::periodic(vec![
            Action::AcquireSem(a),
            Action::AcquireSem(c),
            Action::ReleaseSem(c),
            Action::ReleaseSem(a),
        ]),
    );
    b.add_periodic_task(
        p,
        "ba",
        ms(20),
        Script::periodic(vec![
            Action::AcquireSem(c),
            Action::AcquireSem(a),
            Action::ReleaseSem(a),
            Action::ReleaseSem(c),
        ]),
    );
    match b.try_build() {
        Err(ConfigError::SrpGraph(SrpGraphError::LockOrderCycle { resources })) => {
            assert!(resources.len() >= 3, "cycle path is closed: {resources:?}");
        }
        other => panic!("expected a lock-order cycle, got {other:?}"),
    }
}

#[test]
fn srp_blocking_inside_critical_section_is_rejected() {
    let mut b = KernelBuilder::new(cfg(LockChoice::Srp));
    let p = b.add_process("app");
    let m = b.add_mutex();
    let e = b.add_event();
    b.add_periodic_task(
        p,
        "blocker",
        ms(10),
        Script::periodic(vec![
            Action::AcquireSem(m),
            Action::WaitEvent(e),
            Action::ReleaseSem(m),
        ]),
    );
    assert!(matches!(
        b.try_build(),
        Err(ConfigError::SrpGraph(
            SrpGraphError::BlockWhileHolding { .. }
        ))
    ));
}

#[test]
fn srp_section_left_open_at_job_end_is_rejected() {
    let mut b = KernelBuilder::new(cfg(LockChoice::Srp));
    let p = b.add_process("app");
    let m = b.add_mutex();
    b.add_periodic_task(
        p,
        "leaker",
        ms(10),
        Script::periodic(vec![Action::AcquireSem(m), Action::Compute(us(10))]),
    );
    assert!(matches!(
        b.try_build(),
        Err(ConfigError::SrpGraph(SrpGraphError::HeldAtEnd { .. }))
    ));
}

#[test]
fn same_config_builds_fine_under_pi_but_not_srp() {
    // The SRP rejection is about the *policy*, not the workload: the
    // identical builder input is accepted under PI (where blocking
    // inside a section is legal, if inadvisable).
    let build = |lock: LockChoice| {
        let mut b = KernelBuilder::new(cfg(lock));
        let p = b.add_process("app");
        let m = b.add_mutex();
        let e = b.add_event();
        b.add_periodic_task(
            p,
            "w",
            ms(10),
            Script::periodic(vec![
                Action::AcquireSem(m),
                Action::WaitEvent(e),
                Action::ReleaseSem(m),
            ]),
        );
        b.add_periodic_task(
            p,
            "s",
            ms(15),
            Script::periodic(vec![Action::SignalEvent(e), Action::Compute(us(10))]),
        );
        b.try_build()
    };
    assert!(build(LockChoice::Pi).is_ok());
    assert!(build(LockChoice::Srp).is_err());
}

// --- next_sem hint overrides ------------------------------------------

/// A task whose hint would fire: WaitEvent directly before an acquire.
fn hinted_builder() -> (KernelBuilder, ThreadId, SemId, SemId) {
    let mut b = KernelBuilder::new(cfg(LockChoice::Pi));
    let p = b.add_process("app");
    let m0 = b.add_mutex();
    let m1 = b.add_mutex();
    let e = b.add_event();
    let t = b.add_periodic_task(
        p,
        "hinted",
        ms(100),
        Script::periodic(vec![
            Action::WaitEvent(e),
            Action::AcquireSem(m0),
            Action::Compute(us(100)),
            Action::ReleaseSem(m0),
        ]),
    );
    b.add_periodic_task(
        p,
        "waker",
        ms(200),
        Script::periodic(vec![Action::SleepFor(ms(1)), Action::SignalEvent(e)]),
    );
    b.add_periodic_task(
        p,
        "holder",
        ms(400),
        Script::periodic(vec![
            Action::AcquireSem(m0),
            Action::Compute(ms(4)),
            Action::ReleaseSem(m0),
        ]),
    );
    (b, t, m0, m1)
}

#[test]
fn hint_naming_a_sem_the_task_never_acquires_is_rejected() {
    let (mut b, t, m0, m1) = hinted_builder();
    b.override_hint(t, 0, Some(m1));
    match b.try_build() {
        Err(ConfigError::InvalidHint {
            task,
            action,
            hinted,
            expected,
        }) => {
            assert_eq!(task, t);
            assert_eq!(action, 0);
            assert_eq!(hinted, m1);
            assert_eq!(expected, Some(m0));
        }
        other => panic!("expected InvalidHint, got {other:?}"),
    }
}

#[test]
fn hint_on_a_non_blocking_action_is_rejected() {
    let (mut b, t, m0, _) = hinted_builder();
    // Action 2 is a Compute; action 1 is the acquire itself — neither
    // carries a next_sem parameter.
    b.override_hint(t, 2, Some(m0));
    assert!(matches!(
        b.try_build(),
        Err(ConfigError::InvalidHintTarget { action: 2, .. })
    ));
}

#[test]
fn hint_matching_the_parser_is_accepted_and_identical() {
    let (mut b, t, m0, _) = hinted_builder();
    b.override_hint(t, 0, Some(m0));
    let mut k = b.try_build().expect("parser-matching hint is valid");
    let (mut plain, ..) = {
        let (b2, ..) = hinted_builder();
        (b2.build(), ())
    };
    k.run_until(Time::from_ms(50));
    plain.run_until(Time::from_ms(50));
    assert_eq!(k.now(), plain.now(), "explicit hint changed nothing");
    assert_eq!(
        k.trace().events().len(),
        plain.trace().events().len(),
        "explicit hint changed the event stream"
    );
}

#[test]
fn hint_override_none_disables_early_inheritance() {
    let (b, ..) = hinted_builder();
    let mut with_hint = b.build();
    let (mut b2, t, ..) = hinted_builder();
    b2.override_hint(t, 0, None);
    let mut without = b2.try_build().expect("None hint is always valid");
    with_hint.run_until(Time::from_ms(50));
    without.run_until(Time::from_ms(50));
    let early = |k: &Kernel| {
        k.trace()
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::EarlyInherit { .. }))
            .count()
    };
    assert!(
        early(&with_hint) > 0,
        "scenario exercises early inheritance"
    );
    assert_eq!(early(&without), 0, "None override still early-inherited");
}
