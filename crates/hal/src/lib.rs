//! Simulated target hardware for the EMERALDS reproduction.
//!
//! The paper's platform is a 15–25 MHz single-chip microcontroller
//! (Motorola 68332 / Intel i960 / Hitachi SH-2 class; measurements were
//! made on a 25 MHz Motorola 68040 with a 5 MHz on-chip timer) with
//! 32–128 KB of on-chip memory and no disk. We cannot run on that
//! silicon, so this crate substitutes a behavioural model:
//!
//! - [`CostModel`]: per-primitive virtual-time charges calibrated from
//!   the paper's measured formulas (Table 1 and the §5.7/§6.4 anchors).
//! - [`Clock`]: the CPU's virtual clock.
//! - [`ProgrammableTimer`]: a one-shot hardware timer with configurable
//!   resolution, as used for task releases and timeouts.
//! - [`InterruptController`]: prioritized interrupt lines with masking.
//! - [`Mpu`]: a region-based memory protection unit (EMERALDS provides
//!   "full memory protection for threads", §3).
//! - [`Board`] and devices: sensors, actuators, a UART and a fieldbus
//!   NIC, enough to build the paper's motivating applications (engine
//!   control, voice compression, avionics) as examples.
//!
//! The kernel in `emeralds-core` runs *real* queue manipulations and
//! charges virtual time through the cost model, so every reported
//! microsecond traces back to an operation the algorithm actually
//! performed.

pub mod board;
pub mod clock;
pub mod cost;
pub mod device;
pub mod irq;
pub mod mpu;
pub mod timer;

pub use board::{Board, BoardConfig};
pub use clock::Clock;
pub use cost::CostModel;
pub use device::{Actuator, Device, DeviceEvent, DeviceKind, Sensor, Uart};
pub use irq::InterruptController;
pub use mpu::{AccessKind, Mpu, MpuFault, Perms, Region};
pub use timer::ProgrammableTimer;
