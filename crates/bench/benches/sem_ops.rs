//! Criterion bench: the full contended semaphore scenario (Figure 6)
//! on the live kernel — one measurement per scheme and queue kind.
//!
//! Criterion reports host time per simulated scenario; the *virtual*
//! microseconds (the paper's Figure 11 / §6.4 numbers) come from
//! `expts fig11` / `expts fig12`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emeralds_bench::semfig::{measure, QueueKind};
use std::hint::black_box;

fn bench_contended_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("contended_pair_scenario");
    g.sample_size(20);
    for (queue, name) in [(QueueKind::Dp, "dp"), (QueueKind::Fp, "fp")] {
        for len in [5usize, 15, 30] {
            g.bench_with_input(
                BenchmarkId::new(name, len),
                &len,
                |b, &len| b.iter(|| black_box(measure(queue, len))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_contended_pair);
criterion_main!(benches);
