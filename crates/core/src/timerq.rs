//! The kernel's software timer queue (Figure 1: "Timers / Clock
//! services").
//!
//! A small-memory kernel keeps pending timeouts in a *delta queue*: a
//! list ordered by expiry where each node stores the time delta to its
//! predecessor, so the head's delta is the only value the tick handler
//! decrements and reprogramming the one-shot hardware timer needs only
//! the head. The original structure here was exactly that — O(n)
//! insert walk, O(1) pop. Profiling the cluster executive showed the
//! insert walk dominating timer cost once dozens of periodic tasks
//! re-arm one period ahead (each insert walks essentially the whole
//! queue), so the queue now carries a **bucketed wheel front-end**:
//!
//! - `current` — a sorted dispensing window holding every entry below
//!   the dispensed-bucket boundary. Head pops, `next_expiry`, and
//!   `head_delta` stay O(1), exactly as the delta queue's head did.
//! - `far` — a calendar of fixed-width time buckets (width
//!   [`BUCKET_NS`]); arming a far timer appends to its bucket
//!   *unsorted* in O(log #buckets). When the window drains, the next
//!   nonempty bucket is sorted once and becomes the window
//!   (sort-on-dispense, amortized O(log k) per entry).
//!
//! Expiry order is untouched: entries pop in (time, insertion seq)
//! order — FIFO among equal expiries — matching the determinism
//! guarantees of the rest of the simulator, and the per-op *virtual*
//! cost model is charged by the callers (a flat `timer_program`), so
//! restructuring the host-side work cannot move virtual time. The
//! `insert_walks` counter now reports the ordering work actually
//! performed (binary-search probes, bucket appends, dispense-sort
//! comparisons) so the hot-path benchmark can state the before/after
//! honestly.

use std::collections::VecDeque;

use emeralds_sim::Time;

/// Calendar bucket width: 2^16 ns ≈ 65.5 µs, a handful of bus-frame
/// times. Task periods (hundreds of µs to tens of ms) land several
/// buckets out, so same-period re-arms never pile into the dispensing
/// window.
const BUCKET_SHIFT: u32 = 16;

/// Bucket width in nanoseconds.
pub const BUCKET_NS: u64 = 1 << BUCKET_SHIFT;

/// A pending timer entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

/// A timer queue with a sorted dispensing window and a bucketed
/// calendar for far timers. O(log) insert, O(1) expiry pop and head
/// inspection. Pops in (expiry, arm-order) order — stable FIFO among
/// equal expiries.
#[derive(Clone, Debug)]
pub struct TimerQueue<E> {
    /// Sorted dispensing window: every entry with bucket index below
    /// `dispensed_until`. Nonempty whenever the queue is nonempty.
    current: VecDeque<Entry<E>>,
    /// Calendar buckets `(index, entries)` sorted by index
    /// (index = expiry ns >> BUCKET_SHIFT), holding unsorted far
    /// entries, all with bucket >= `dispensed_until`. A flat sorted
    /// deque instead of a `BTreeMap`: periodic re-arms in steady state
    /// then recycle capacity instead of churning tree nodes — the
    /// kernel hot loop stays allocation-free once warmed up.
    far: VecDeque<(u64, Vec<Entry<E>>)>,
    far_len: usize,
    /// Emptied bucket vectors kept for reuse (capacity, not contents).
    spare: Vec<Vec<Entry<E>>>,
    /// Exclusive bucket bound of the dispensing window.
    dispensed_until: u64,
    seq: u64,
    /// Lifetime statistics: ordering work performed by inserts
    /// (binary-search probes + bucket appends + dispense-sort
    /// comparisons), for the overhead ledger, tests, and the hot-path
    /// benchmark.
    pub insert_walks: u64,
    pub inserts: u64,
    pub expirations: u64,
}

impl<E> TimerQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TimerQueue {
            current: VecDeque::new(),
            far: VecDeque::new(),
            far_len: 0,
            spare: Vec::new(),
            dispensed_until: 0,
            seq: 0,
            insert_walks: 0,
            inserts: 0,
            expirations: 0,
        }
    }

    /// Bound on pooled bucket vectors — enough for every in-flight
    /// bucket of a busy workload without letting a burst pin memory.
    const SPARE_CAP: usize = 64;

    /// Returns an emptied bucket vector to the reuse pool.
    fn recycle(&mut self, v: Vec<Entry<E>>) {
        debug_assert!(v.is_empty());
        if self.spare.len() < Self::SPARE_CAP {
            self.spare.push(v);
        }
    }

    /// Pulls the earliest far bucket into the (empty) dispensing
    /// window, sorting it once.
    fn cascade(&mut self) {
        debug_assert!(self.current.is_empty());
        if let Some((bucket, mut v)) = self.far.pop_front() {
            self.far_len -= v.len();
            let mut cmps = 0u64;
            v.sort_by(|a, b| {
                cmps += 1;
                (a.at, a.seq).cmp(&(b.at, b.seq))
            });
            self.insert_walks += cmps;
            self.current.extend(v.drain(..));
            self.recycle(v);
            self.dispensed_until = bucket + 1;
        }
    }

    /// Arms a timer at `at`. Returns the ordering work performed (the
    /// cost driver the old delta queue paid as a full insert walk).
    pub fn arm(&mut self, at: Time, payload: E) -> usize {
        let seq = self.seq;
        self.seq += 1;
        self.inserts += 1;
        let bucket = at.as_ns() >> BUCKET_SHIFT;
        let work = if bucket < self.dispensed_until {
            // Already-dispensed range: binary-search the sorted
            // window; FIFO among equal expiries.
            let pos = self.current.partition_point(|e| e.at <= at);
            self.current.insert(pos, Entry { at, seq, payload });
            usize::BITS as usize - self.current.len().leading_zeros() as usize
        } else {
            // Sorted-by-bucket deque: find the bucket's slot (steady
            // periodic re-arms land at or near the back).
            let pos = self.far.partition_point(|(b, _)| *b < bucket);
            match self.far.get_mut(pos) {
                Some((b, v)) if *b == bucket => v.push(Entry { at, seq, payload }),
                _ => {
                    let mut v = self.spare.pop().unwrap_or_default();
                    v.push(Entry { at, seq, payload });
                    self.far.insert(pos, (bucket, v));
                }
            }
            self.far_len += 1;
            if self.current.is_empty() {
                self.cascade();
            }
            1
        };
        self.insert_walks += work as u64;
        work
    }

    /// The head expiry — what the hardware one-shot gets programmed
    /// to.
    pub fn next_expiry(&self) -> Option<Time> {
        self.current.front().map(|e| e.at)
    }

    /// Pops the head if due at or before `now` — O(1) on the deque.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        if self.current.front().is_some_and(|e| e.at <= now) {
            let e = self.current.pop_front().expect("front checked above");
            self.expirations += 1;
            if self.current.is_empty() {
                self.cascade();
            }
            Some((e.at, e.payload))
        } else {
            None
        }
    }

    /// Delta of the head relative to `now` (what a tick decrements),
    /// zero when already due.
    pub fn head_delta(&self, now: Time) -> Option<emeralds_sim::Duration> {
        self.current.front().map(|e| e.at.saturating_since(now))
    }

    /// Cancels all entries matching `pred`; returns how many.
    pub fn cancel(&mut self, mut pred: impl FnMut(&E) -> bool) -> usize {
        let before = self.len();
        self.current.retain(|e| !pred(&e.payload));
        for (_, v) in &mut self.far {
            v.retain(|e| !pred(&e.payload));
        }
        let mut i = 0;
        while i < self.far.len() {
            if self.far[i].1.is_empty() {
                let (_, v) = self.far.remove(i).expect("index checked above");
                self.recycle(v);
            } else {
                i += 1;
            }
        }
        self.far_len = self.far.iter().map(|(_, v)| v.len()).sum();
        if self.current.is_empty() {
            self.cascade();
        }
        before - self.len()
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.current.len() + self.far_len
    }

    /// True if nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.far_len == 0
    }
}

impl<E> Default for TimerQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emeralds_sim::Duration;

    #[test]
    fn pops_in_time_order_fifo_on_ties() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(5), 'b');
        q.arm(Time::from_us(1), 'a');
        q.arm(Time::from_us(5), 'c');
        assert_eq!(q.next_expiry(), Some(Time::from_us(1)));
        let order: Vec<char> =
            std::iter::from_fn(|| q.pop_due(Time::from_us(10)).map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.expirations, 3);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(10), 1);
        assert_eq!(q.pop_due(Time::from_us(9)), None);
        assert_eq!(q.pop_due(Time::from_us(10)), Some((Time::from_us(10), 1)));
    }

    #[test]
    fn order_holds_across_buckets_and_window_inserts() {
        // Entries spanning many calendar buckets, armed out of order,
        // with ties, plus a late insert into the already-dispensed
        // window: pops must come back in exact (time, arm-order)
        // order.
        let mut q = TimerQueue::new();
        let times_ms = [7u64, 1, 40, 7, 3, 100, 1, 40];
        for (i, &ms) in times_ms.iter().enumerate() {
            q.arm(Time::from_ms(ms), i);
        }
        assert_eq!(q.len(), times_ms.len());
        // Pop the first bucket's entry to open the window…
        assert_eq!(q.pop_due(Time::from_ms(1)), Some((Time::from_ms(1), 1)));
        // …then arm *behind* the dispensing boundary.
        q.arm(Time::from_us(1500), 99);
        let mut order = Vec::new();
        while let Some((at, v)) = q.pop_due(Time::from_ms(200)) {
            order.push((at, v));
        }
        let expect = vec![
            (Time::from_ms(1), 6),
            (Time::from_us(1500), 99),
            (Time::from_ms(3), 4),
            (Time::from_ms(7), 0),
            (Time::from_ms(7), 3),
            (Time::from_ms(40), 2),
            (Time::from_ms(40), 7),
            (Time::from_ms(100), 5),
        ];
        assert_eq!(order, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn far_inserts_do_not_walk() {
        // The delta queue's pathology: N periodic re-arms each walked
        // the whole queue (Θ(N²) total). Calendar appends are O(1)
        // each plus a one-time sort at dispense.
        let mut q = TimerQueue::new();
        for i in 0..64u64 {
            // 64 distinct far buckets, in-order arms (worst case for
            // the old walk).
            assert_eq!(q.arm(Time::from_ms(1 + i), i), 1);
        }
        assert_eq!(q.inserts, 64);
        // 63 appends at cost 1 each + 1 append that also cascaded.
        assert!(q.insert_walks < 64 * 8, "walks {}", q.insert_walks);
    }

    #[test]
    fn head_delta_and_cancel() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(100), 7);
        q.arm(Time::from_us(200), 8);
        assert_eq!(q.head_delta(Time::from_us(40)), Some(Duration::from_us(60)));
        assert_eq!(q.cancel(|&v| v == 7), 1);
        assert_eq!(q.next_expiry(), Some(Time::from_us(200)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancel_across_buckets_keeps_head_exact() {
        let mut q = TimerQueue::new();
        for i in 0..10u64 {
            q.arm(Time::from_ms(1 + 2 * i), i);
        }
        // Cancel the entire first few buckets' worth.
        assert_eq!(q.cancel(|&v| v < 3), 3);
        assert_eq!(q.next_expiry(), Some(Time::from_ms(7)));
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn overdue_head_has_zero_delta() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_us(10), 0);
        assert_eq!(q.head_delta(Time::from_us(50)), Some(Duration::ZERO));
    }

    /// The legacy delta queue's observable behavior, as a reference
    /// model: a plain list in exact (expiry, arm-order) order.
    struct Reference {
        entries: Vec<(Time, u64, u64)>,
        seq: u64,
    }

    impl Reference {
        fn new() -> Reference {
            Reference {
                entries: Vec::new(),
                seq: 0,
            }
        }

        fn arm(&mut self, at: Time, payload: u64) {
            self.entries.push((at, self.seq, payload));
            self.seq += 1;
            self.entries.sort_by_key(|&(at, seq, _)| (at, seq));
        }

        fn pop_due(&mut self, now: Time) -> Option<(Time, u64)> {
            if self.entries.first().is_some_and(|e| e.0 <= now) {
                let (at, _, payload) = self.entries.remove(0);
                Some((at, payload))
            } else {
                None
            }
        }

        fn next_expiry(&self) -> Option<Time> {
            self.entries.first().map(|e| e.0)
        }

        fn cancel(&mut self, pred: impl Fn(&u64) -> bool) -> usize {
            let before = self.entries.len();
            self.entries.retain(|e| !pred(&e.2));
            before - self.entries.len()
        }
    }

    /// Property test: the bucket wheel is observationally identical to
    /// the legacy delta queue on randomized arm/pop/cancel workloads —
    /// including arms landing *exactly* on a calendar-bucket boundary
    /// (and one tick either side), arms behind the dispensing window,
    /// far-future arms up against `u64::MAX`, and FIFO ties. Checked
    /// after every operation: head expiry, head delta, length; on
    /// every pop: the exact `(time, payload)` pair.
    #[test]
    fn wheel_matches_delta_queue_on_randomized_workloads() {
        let mut rng = emeralds_sim::SimRng::seeded(0x71AE5);
        for case in 0..24u64 {
            let mut rng = rng.derive(case);
            let mut q = TimerQueue::new();
            let mut m = Reference::new();
            let mut now = Time::ZERO;
            let mut next_payload = 0u64;
            for op in 0..400u32 {
                let ctx = |now: Time| format!("case {case} op {op} now {}", now.as_ns());
                let roll = rng.int_in(0, 99);
                if roll < 55 {
                    // Arm, drawing the expiry from an edge-heavy mix.
                    let at = match rng.int_in(0, 9) {
                        0..=2 => {
                            Time::from_ns(now.as_ns().saturating_add(rng.int_in(0, 2 * BUCKET_NS)))
                        }
                        3..=4 => {
                            // Exactly on a bucket boundary at or after
                            // the dispensing window.
                            let k = now.as_ns() / BUCKET_NS + rng.int_in(0, 3);
                            Time::from_ns(k.saturating_mul(BUCKET_NS))
                        }
                        5 => {
                            // One tick either side of a boundary.
                            let k = (now.as_ns() / BUCKET_NS + rng.int_in(1, 3))
                                .saturating_mul(BUCKET_NS);
                            Time::from_ns(if rng.chance(0.5) {
                                k - 1
                            } else {
                                k.saturating_add(1)
                            })
                        }
                        6 => {
                            // Behind `now` (overdue) and possibly
                            // behind the dispensing window.
                            Time::from_ns(now.as_ns().saturating_sub(rng.int_in(0, BUCKET_NS)))
                        }
                        7..=8 => Time::from_ns(
                            now.as_ns()
                                .saturating_add(rng.int_in(2 * BUCKET_NS, 60 * BUCKET_NS)),
                        ),
                        _ => {
                            // Far-future overflow zone.
                            Time::from_ns(u64::MAX - rng.int_in(0, 3 * BUCKET_NS))
                        }
                    };
                    let p = next_payload;
                    next_payload += 1;
                    q.arm(at, p);
                    m.arm(at, p);
                    // FIFO ties are common: re-arm the same instant.
                    if rng.chance(0.25) {
                        let p = next_payload;
                        next_payload += 1;
                        q.arm(at, p);
                        m.arm(at, p);
                    }
                } else if roll < 85 {
                    // Advance time — sometimes exactly onto the next
                    // head expiry or a bucket boundary — and drain.
                    now = match rng.int_in(0, 3) {
                        0 => Time::from_ns(
                            (now.as_ns() / BUCKET_NS + rng.int_in(1, 4)).saturating_mul(BUCKET_NS),
                        ),
                        1 => m.next_expiry().unwrap_or(now).max(now),
                        _ => {
                            Time::from_ns(now.as_ns().saturating_add(rng.int_in(1, 8 * BUCKET_NS)))
                        }
                    };
                    loop {
                        let got = q.pop_due(now);
                        let want = m.pop_due(now);
                        assert_eq!(got, want, "pop diverged ({})", ctx(now));
                        if got.is_none() {
                            break;
                        }
                    }
                } else if roll < 95 {
                    // Cancel a pseudo-random payload class (sometimes
                    // emptying the dispensing window entirely).
                    let modulus = rng.int_in(2, 5);
                    let class = rng.int_in(0, modulus - 1);
                    let cancelled = q.cancel(|&v| v % modulus == class);
                    assert_eq!(
                        cancelled,
                        m.cancel(|&v| v % modulus == class),
                        "cancel count diverged ({})",
                        ctx(now)
                    );
                } else {
                    assert_eq!(
                        q.head_delta(now),
                        m.next_expiry().map(|at| at.saturating_since(now)),
                        "head delta diverged ({})",
                        ctx(now)
                    );
                }
                assert_eq!(
                    q.next_expiry(),
                    m.next_expiry(),
                    "head diverged ({})",
                    ctx(now)
                );
                assert_eq!(q.len(), m.entries.len(), "length diverged ({})", ctx(now));
                assert_eq!(q.is_empty(), m.entries.is_empty());
            }
            // Final drain at the end of time: every armed entry —
            // including the `u64::MAX`-adjacent ones — pops, in exact
            // reference order.
            loop {
                let got = q.pop_due(Time::MAX);
                let want = m.pop_due(Time::MAX);
                assert_eq!(got, want, "final drain diverged (case {case})");
                if got.is_none() {
                    break;
                }
            }
            assert!(q.is_empty());
        }
    }

    /// Pinned boundary case: an arm landing exactly on the
    /// `dispensed_until` bucket boundary must file as a far entry (its
    /// bucket has not been dispensed) yet still pop before any
    /// larger-time window entry and after every smaller one.
    #[test]
    fn arm_exactly_on_dispensing_boundary_orders_correctly() {
        let mut q = TimerQueue::new();
        // Two entries in bucket 0 open a window with
        // `dispensed_until` = 1 after the cascade on first arm.
        q.arm(Time::from_ns(10), 0u64);
        q.arm(Time::from_ns(BUCKET_NS - 1), 1);
        // Exactly at the boundary: bucket 1, one past the window.
        q.arm(Time::from_ns(BUCKET_NS), 2);
        // And behind the boundary, into the dispensed window.
        q.arm(Time::from_ns(20), 3);
        let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop_due(Time::MAX)).collect();
        assert_eq!(
            order,
            vec![
                (Time::from_ns(10), 0),
                (Time::from_ns(20), 3),
                (Time::from_ns(BUCKET_NS - 1), 1),
                (Time::from_ns(BUCKET_NS), 2),
            ]
        );
    }
}
