//! Conservative-lookahead parallel cluster execution.
//!
//! EMERALDS targets 5–10 node distributed systems over a 1–2 Mbit/s
//! fieldbus (§2); growing the reproduction past one board means
//! advancing many independent kernel instances at once. This module is
//! the *generic* half of that executive: a deterministic epoch engine
//! that advances a set of [`EpochNode`]s in parallel across host
//! threads under **conservative lookahead** synchronization.
//!
//! The model is the classic conservative PDES argument specialized to
//! a shared bus: nodes interact *only* through frames exchanged at
//! epoch barriers, and no frame can traverse the bus in less than one
//! frame time. Therefore every node may safely run ahead by one
//! bus-frame latency (the *lookahead window*) without observing any
//! input it has not yet been handed. The engine repeats:
//!
//! 1. **advance** — every node independently steps its local virtual
//!    clock to the epoch boundary (parallel, no shared state);
//! 2. **barrier** — all nodes have reached the boundary;
//! 3. **exchange** — a caller-supplied closure runs *serially* with
//!    exclusive access to all nodes (harvest TX queues, arbitrate the
//!    bus, deliver due frames).
//!
//! Determinism: a node's advance depends only on its own pre-epoch
//! state (nodes share nothing until the barrier), and the exchange is
//! serial in node order. Hence the result is **bit-for-bit identical
//! for any worker count** — the thread pool only decides which host
//! core runs which node, never the order of observable effects.
//!
//! The bus-aware half (kernels, frames, arbitration) lives in
//! `emeralds-fieldbus`, which implements [`EpochNode`] for its cluster
//! node type; this crate stays free of kernel types.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::time::{Duration, Time};

/// A sense-reversing barrier that spins briefly before yielding.
///
/// Epochs are short (one bus-frame time of virtual work, typically a
/// few microseconds of host work per node), so the engine crosses a
/// barrier every few microseconds. `std::sync::Barrier` parks threads
/// through a futex — wakeup latency alone can exceed an entire epoch's
/// work. Spinning keeps hot workers hot; the yield fallback keeps the
/// engine livable on oversubscribed or single-core hosts.
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(parties: usize) -> SpinBarrier {
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 512 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A simulated board that can advance its own virtual clock to a
/// horizon without external input. Implementations must be
/// deterministic: the post-state may depend only on the pre-state and
/// the horizon.
pub trait EpochNode: Send {
    /// Advances local virtual time to (at least) `horizon`.
    fn advance_to(&mut self, horizon: Time);
}

/// Epoch-engine tuning.
#[derive(Clone, Copy, Debug)]
pub struct EpochConfig {
    /// Length of one epoch — the conservative lookahead window. For a
    /// fieldbus cluster this is one bus-frame latency.
    pub lookahead: Duration,
    /// Host worker threads (clamped to `1..=nodes`). `1` runs fully
    /// serial on the calling thread.
    pub workers: usize,
}

/// Host-side cost accounting for one `run_epochs` call.
///
/// Every field is *measurement*, not simulation state: barrier counts
/// are deterministic for a given lookahead policy, while the
/// nanosecond fields are wall-clock and vary run to run. None of them
/// feed back into virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Barrier crossings (== epochs executed == exchange invocations).
    pub barriers: u64,
    /// Wall nanoseconds spent inside the serial exchange closure.
    pub serial_ns: u64,
    /// Wall nanoseconds for the whole `run_epochs` call.
    pub wall_ns: u64,
}

impl EpochStats {
    /// Fraction of total wall time spent in the serial exchange —
    /// the Amdahl limiter for the parallel executive.
    pub fn serial_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.wall_ns as f64
        }
    }

    /// Accumulates another call's stats (for split `run_until`s).
    pub fn merge(&mut self, other: &EpochStats) {
        self.barriers += other.barriers;
        self.serial_ns += other.serial_ns;
        self.wall_ns += other.wall_ns;
    }
}

/// Advances `nodes` from `from` to `horizon` in lookahead-sized
/// epochs, invoking `exchange` at every barrier with exclusive,
/// in-order access to all nodes and the barrier instant.
///
/// The exchange may return a **next-barrier proposal**: `Some(t)`
/// schedules the next barrier at `t` (clamped to `horizon`) instead of
/// the default `cur + lookahead`. This is how a bus model with nothing
/// in flight stretches the epoch across provably-quiet virtual time
/// and collapses barrier crossings. Proposals must advance strictly
/// past the current barrier; `None` keeps the fixed cadence for the
/// next epoch.
///
/// The final epoch is truncated at `horizon`, and `exchange` runs one
/// last time at the horizon itself, so callers can flush in-flight
/// state.
///
/// Returns per-call [`EpochStats`] (barrier count and serial/total
/// wall nanoseconds).
///
/// # Panics
///
/// Panics on a zero lookahead (the engine would not make progress) or
/// on a non-advancing exchange proposal.
pub fn run_epochs<N, X>(
    nodes: &mut Vec<N>,
    from: Time,
    horizon: Time,
    cfg: &EpochConfig,
    exchange: &mut X,
) -> EpochStats
where
    N: EpochNode,
    X: FnMut(&mut [&mut N], Time) -> Option<Time>,
{
    assert!(!cfg.lookahead.is_zero(), "zero lookahead");
    let mut stats = EpochStats::default();
    if nodes.is_empty() || from >= horizon {
        return stats;
    }
    let t_run = Instant::now();
    let workers = cfg.workers.clamp(1, nodes.len());
    if workers == 1 {
        let mut cur = from;
        let mut hint: Option<Time> = None;
        while cur < horizon {
            let end = horizon.min(hint.take().unwrap_or(cur + cfg.lookahead));
            for n in nodes.iter_mut() {
                n.advance_to(end);
            }
            let mut refs: Vec<&mut N> = nodes.iter_mut().collect();
            let t_ex = Instant::now();
            hint = exchange(&mut refs, end);
            stats.serial_ns += t_ex.elapsed().as_nanos() as u64;
            stats.barriers += 1;
            if let Some(h) = hint {
                assert!(h > end, "exchange proposed a non-advancing barrier");
            }
            cur = end;
        }
        stats.wall_ns = t_run.elapsed().as_nanos() as u64;
        return stats;
    }

    // Parallel path: nodes live in per-node mutexes for the duration.
    // Workers own disjoint strided subsets during an epoch, and the
    // exchange takes every lock between barriers, so locks are never
    // contended — they only launder the aliasing for the borrow
    // checker. The calling thread doubles as worker 0 (and runs the
    // exchange), so exactly `workers` threads exist: on a host with as
    // many free cores as workers, nobody is oversubscribed. Two
    // barrier crossings per epoch:
    //
    //   publish end → [A] → advance strides → [B] → exchange (worker 0
    //   only; the rest spin toward the next A)
    let cells: Vec<Mutex<N>> = nodes.drain(..).map(Mutex::new).collect();
    let epoch_end_ns = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let barrier = SpinBarrier::new(workers);
    let advance_stride = |w: usize, end: Time| {
        let mut i = w;
        while i < cells.len() {
            cells[i].lock().expect("node poisoned").advance_to(end);
            i += workers;
        }
    };
    std::thread::scope(|s| {
        for w in 1..workers {
            let barrier = &barrier;
            let epoch_end_ns = &epoch_end_ns;
            let done = &done;
            let advance_stride = &advance_stride;
            s.spawn(move || loop {
                barrier.wait(); // A: epoch published
                if done.load(Ordering::Acquire) {
                    break;
                }
                let end = Time::from_ns(epoch_end_ns.load(Ordering::Acquire));
                advance_stride(w, end);
                barrier.wait(); // B: every node advanced
            });
        }
        let mut cur = from;
        let mut hint: Option<Time> = None;
        while cur < horizon {
            let end = horizon.min(hint.take().unwrap_or(cur + cfg.lookahead));
            epoch_end_ns.store(end.as_ns(), Ordering::Release);
            barrier.wait(); // A
            advance_stride(0, end);
            barrier.wait(); // B
            let mut guards: Vec<_> = cells
                .iter()
                .map(|c| c.lock().expect("node poisoned"))
                .collect();
            let mut refs: Vec<&mut N> = guards.iter_mut().map(|g| &mut **g).collect();
            let t_ex = Instant::now();
            hint = exchange(&mut refs, end);
            stats.serial_ns += t_ex.elapsed().as_nanos() as u64;
            stats.barriers += 1;
            if let Some(h) = hint {
                assert!(h > end, "exchange proposed a non-advancing barrier");
            }
            cur = end;
        }
        done.store(true, Ordering::Release);
        barrier.wait(); // final A: release workers into shutdown
    });
    nodes.extend(
        cells
            .into_iter()
            .map(|c| c.into_inner().expect("node poisoned")),
    );
    stats.wall_ns = t_run.elapsed().as_nanos() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy node: logs every horizon it is advanced to and sums
    /// values it is handed at exchanges.
    struct Probe {
        horizons: Vec<Time>,
        inbox: u64,
    }

    impl EpochNode for Probe {
        fn advance_to(&mut self, horizon: Time) {
            self.horizons.push(horizon);
        }
    }

    fn run(workers: usize, n: usize) -> Vec<(Vec<Time>, u64)> {
        run_with_hint(workers, n, |_| None)
    }

    fn run_with_hint(
        workers: usize,
        n: usize,
        mut hint: impl FnMut(Time) -> Option<Time>,
    ) -> Vec<(Vec<Time>, u64)> {
        let mut nodes: Vec<Probe> = (0..n)
            .map(|_| Probe {
                horizons: Vec::new(),
                inbox: 0,
            })
            .collect();
        let cfg = EpochConfig {
            lookahead: Duration::from_us(100),
            workers,
        };
        let mut round = 0u64;
        run_epochs(
            &mut nodes,
            Time::ZERO,
            Time::from_us(450),
            &cfg,
            &mut |nodes, at| {
                round += 1;
                // Every node learns the barrier instant and the round.
                for n in nodes.iter_mut() {
                    n.inbox += at.as_ns() + round;
                }
                hint(at)
            },
        );
        nodes.into_iter().map(|n| (n.horizons, n.inbox)).collect()
    }

    #[test]
    fn epochs_truncate_at_horizon() {
        let out = run(1, 2);
        let expect: Vec<Time> = [100u64, 200, 300, 400, 450]
            .iter()
            .map(|&us| Time::from_us(us))
            .collect();
        assert_eq!(out[0].0, expect);
        assert_eq!(out[1].0, expect);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let base = run(1, 7);
        for workers in [2, 4, 16] {
            assert_eq!(run(workers, 7), base, "workers={workers}");
        }
    }

    #[test]
    fn exchange_hint_stretches_epochs_and_clamps_at_horizon() {
        // Every exchange proposes a barrier two windows out; the final
        // proposal (500µs) must clamp to the 450µs horizon.
        let hint = |at: Time| Some(at + Duration::from_us(200));
        let out = run_with_hint(1, 3, hint);
        let expect: Vec<Time> = [100u64, 300, 450]
            .iter()
            .map(|&us| Time::from_us(us))
            .collect();
        for (horizons, _) in &out {
            assert_eq!(horizons, &expect);
        }
        // Parity: stretched runs are worker-count invariant too.
        for workers in [2, 3] {
            assert_eq!(run_with_hint(workers, 3, hint), out, "workers={workers}");
        }
    }

    #[test]
    fn stats_count_barriers() {
        let mut nodes = vec![Probe {
            horizons: Vec::new(),
            inbox: 0,
        }];
        let cfg = EpochConfig {
            lookahead: Duration::from_us(100),
            workers: 1,
        };
        let stats = run_epochs(
            &mut nodes,
            Time::ZERO,
            Time::from_us(450),
            &cfg,
            &mut |_, _| None,
        );
        assert_eq!(stats.barriers, 5);
        let stretched = run_epochs(
            &mut nodes,
            Time::from_us(450),
            Time::from_us(900),
            &cfg,
            &mut |_, at| Some(at + Duration::from_us(1000)),
        );
        // First epoch ends at 550, the stretched proposal clamps at
        // the horizon: two barriers total.
        assert_eq!(stretched.barriers, 2);
    }

    #[test]
    #[should_panic(expected = "non-advancing barrier")]
    fn non_advancing_hint_panics() {
        let mut nodes = vec![Probe {
            horizons: Vec::new(),
            inbox: 0,
        }];
        let cfg = EpochConfig {
            lookahead: Duration::from_us(100),
            workers: 1,
        };
        run_epochs(
            &mut nodes,
            Time::ZERO,
            Time::from_ms(1),
            &cfg,
            &mut |_, at| Some(at),
        );
    }

    #[test]
    fn empty_and_degenerate_ranges_are_noops() {
        let mut nodes: Vec<Probe> = Vec::new();
        let cfg = EpochConfig {
            lookahead: Duration::from_us(1),
            workers: 4,
        };
        run_epochs(
            &mut nodes,
            Time::ZERO,
            Time::from_ms(1),
            &cfg,
            &mut |_, _| None,
        );
        let mut one = vec![Probe {
            horizons: Vec::new(),
            inbox: 0,
        }];
        run_epochs(
            &mut one,
            Time::from_ms(2),
            Time::from_ms(1),
            &cfg,
            &mut |_, _| None,
        );
        assert!(one[0].horizons.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero lookahead")]
    fn zero_lookahead_panics() {
        let mut nodes = vec![Probe {
            horizons: Vec::new(),
            inbox: 0,
        }];
        let cfg = EpochConfig {
            lookahead: Duration::ZERO,
            workers: 1,
        };
        run_epochs(
            &mut nodes,
            Time::ZERO,
            Time::from_ms(1),
            &cfg,
            &mut |_, _| None,
        );
    }
}
