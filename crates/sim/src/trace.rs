//! Execution trace recording.
//!
//! The paper's semaphore argument (Figures 6–10) is made in terms of
//! *event sequences*: which context switches happen, in which order,
//! around a contended `acquire_sem()`. The trace recorder captures those
//! sequences so tests can assert them literally, and so the experiment
//! harness can redraw Figure 2's RM schedule.

use crate::ids::{CvId, EventId, IrqLine, MboxId, SemId, StateId, ThreadId};
use crate::time::{Duration, Time};

/// One recorded kernel-level occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The dispatcher switched execution contexts. `None` means idle.
    ContextSwitch {
        from: Option<ThreadId>,
        to: Option<ThreadId>,
    },
    /// A periodic/sporadic job was released.
    JobRelease {
        tid: ThreadId,
        job: u64,
        deadline: Time,
    },
    /// A job finished its work for the period.
    JobComplete { tid: ThreadId, job: u64 },
    /// A job was still incomplete at its absolute deadline.
    DeadlineMiss {
        tid: ThreadId,
        job: u64,
        deadline: Time,
    },
    /// A thread blocked in the kernel (any reason).
    Blocked { tid: ThreadId },
    /// A thread became ready.
    Unblocked { tid: ThreadId },
    /// A semaphore was acquired without contention (or handed over).
    SemAcquired { tid: ThreadId, sem: SemId },
    /// A thread found the semaphore held and blocked on it.
    SemBlocked {
        tid: ThreadId,
        sem: SemId,
        holder: ThreadId,
    },
    /// A semaphore was released.
    SemReleased { tid: ThreadId, sem: SemId },
    /// Priority inheritance: `holder` inherited `donor`'s priority.
    PriorityInherit { holder: ThreadId, donor: ThreadId },
    /// `holder` returned to its base priority.
    PriorityRestore { holder: ThreadId },
    /// EMERALDS scheme: inheritance performed *early*, at the blocking
    /// call preceding `acquire_sem()` (§6.2), keeping `waiter` blocked.
    EarlyInherit {
        waiter: ThreadId,
        holder: ThreadId,
        sem: SemId,
    },
    /// EMERALDS scheme: a thread joined the pre-lock queue of a free
    /// semaphore (§6.3.1 modification).
    PreLockAdmit { tid: ThreadId, sem: SemId },
    /// EMERALDS scheme: pre-lock queue members were blocked because one
    /// of them took the lock.
    PreLockBlock { tid: ThreadId, sem: SemId },
    /// A message was copied into a mailbox.
    MboxSend {
        tid: ThreadId,
        mbox: MboxId,
        bytes: usize,
    },
    /// A message was copied out of a mailbox.
    MboxRecv {
        tid: ThreadId,
        mbox: MboxId,
        bytes: usize,
    },
    /// A state-message variable was updated in place (no kernel call).
    StateWrite {
        tid: ThreadId,
        var: StateId,
        seq: u64,
    },
    /// A state-message variable was read (no kernel call).
    StateRead {
        tid: ThreadId,
        var: StateId,
        seq: u64,
    },
    /// A condition variable wait began.
    CvWait { tid: ThreadId, cv: CvId },
    /// A condition variable was signalled.
    CvSignal { tid: ThreadId, cv: CvId },
    /// A software event was signalled.
    EventSignal { tid: ThreadId, event: EventId },
    /// A hardware interrupt was raised by a device.
    IrqRaised { line: IrqLine },
    /// The kernel finished first-level handling of an interrupt.
    IrqHandled { line: IrqLine },
    /// A system call was entered.
    Syscall { tid: ThreadId, name: &'static str },
    /// A memory-protection fault was detected by the MPU.
    ProtectionFault { tid: ThreadId, addr: u64 },
    /// Free-form annotation from examples/tests.
    Note(String),
}

/// A timestamped trace of kernel events.
///
/// Recording can be disabled (`Trace::disabled()`) for long experiment
/// runs where only the [`crate::Accounting`] totals matter; all `push`
/// calls then become no-ops while counters stay live.
#[derive(Debug)]
pub struct Trace {
    events: Vec<(Time, TraceEvent)>,
    recording: bool,
    context_switches: u64,
    deadline_misses: u64,
}

impl Trace {
    /// Creates a recording trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            recording: true,
            context_switches: 0,
            deadline_misses: 0,
        }
    }

    /// Creates a trace that keeps counters but stores no events.
    pub fn disabled() -> Self {
        Trace {
            recording: false,
            ..Trace::new()
        }
    }

    /// True if events are being stored.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Records `event` at `at`.
    pub fn push(&mut self, at: Time, event: TraceEvent) {
        match &event {
            TraceEvent::ContextSwitch { .. } => self.context_switches += 1,
            TraceEvent::DeadlineMiss { .. } => self.deadline_misses += 1,
            _ => {}
        }
        if self.recording {
            debug_assert!(
                self.events.last().map_or(true, |&(t, _)| t <= at),
                "trace timestamps must be monotone"
            );
            self.events.push((at, event));
        }
    }

    /// All stored events in order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// Total context switches (counted even when not recording).
    pub fn context_switch_count(&self) -> u64 {
        self.context_switches
    }

    /// Total deadline misses (counted even when not recording).
    pub fn deadline_miss_count(&self) -> u64 {
        self.deadline_misses
    }

    /// Stored deadline-miss events.
    pub fn deadline_misses(&self) -> Vec<(Time, ThreadId)> {
        self.events
            .iter()
            .filter_map(|(t, e)| match e {
                TraceEvent::DeadlineMiss { tid, .. } => Some((*t, *tid)),
                _ => None,
            })
            .collect()
    }

    /// Stored events matching `pred`, with timestamps.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (Time, TraceEvent)> + 'a {
        self.events.iter().filter(move |(_, e)| pred(e))
    }

    /// The sequence of `(from, to)` context switches, for scenario
    /// assertions like "context switch C2 is eliminated" (Figure 8).
    pub fn context_switch_sequence(&self) -> Vec<(Option<ThreadId>, Option<ThreadId>)> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::ContextSwitch { from, to } => Some((*from, *to)),
                _ => None,
            })
            .collect()
    }

    /// Builds the per-thread execution timeline: intervals during which
    /// each thread occupied the CPU, derived from context switches.
    /// `end` closes the final open interval.
    pub fn execution_intervals(&self, end: Time) -> Vec<(ThreadId, Time, Time)> {
        let mut out = Vec::new();
        let mut current: Option<(ThreadId, Time)> = None;
        for (t, e) in &self.events {
            if let TraceEvent::ContextSwitch { to, .. } = e {
                if let Some((tid, start)) = current.take() {
                    if *t > start {
                        out.push((tid, start, *t));
                    }
                }
                if let Some(to) = to {
                    current = Some((*to, *t));
                }
            }
        }
        if let Some((tid, start)) = current {
            if end > start {
                out.push((tid, start, end));
            }
        }
        out
    }

    /// Renders the trace as one line per event, for debugging and for
    /// the quickstart example.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (t, e) in &self.events {
            s.push_str(&format!("[{:>12}] {}\n", t.to_string(), describe(e)));
        }
        s
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

fn describe(e: &TraceEvent) -> String {
    use TraceEvent::*;
    match e {
        ContextSwitch { from, to } => format!(
            "ctxsw {} -> {}",
            from.map_or("idle".into(), |t| t.to_string()),
            to.map_or("idle".into(), |t| t.to_string())
        ),
        JobRelease { tid, job, deadline } => {
            format!("{tid} job {job} released (deadline {deadline})")
        }
        JobComplete { tid, job } => format!("{tid} job {job} complete"),
        DeadlineMiss { tid, job, deadline } => {
            format!("{tid} job {job} MISSED deadline {deadline}")
        }
        Blocked { tid } => format!("{tid} blocked"),
        Unblocked { tid } => format!("{tid} unblocked"),
        SemAcquired { tid, sem } => format!("{tid} acquired {sem}"),
        SemBlocked { tid, sem, holder } => format!("{tid} blocked on {sem} (held by {holder})"),
        SemReleased { tid, sem } => format!("{tid} released {sem}"),
        PriorityInherit { holder, donor } => format!("{holder} inherits priority of {donor}"),
        PriorityRestore { holder } => format!("{holder} priority restored"),
        EarlyInherit { waiter, holder, sem } => {
            format!("early PI: {waiter} -> {holder} for {sem}")
        }
        PreLockAdmit { tid, sem } => format!("{tid} admitted to pre-lock queue of {sem}"),
        PreLockBlock { tid, sem } => format!("{tid} re-blocked by pre-lock queue of {sem}"),
        MboxSend { tid, mbox, bytes } => format!("{tid} sent {bytes}B to {mbox}"),
        MboxRecv { tid, mbox, bytes } => format!("{tid} received {bytes}B from {mbox}"),
        StateWrite { tid, var, seq } => format!("{tid} wrote {var} (seq {seq})"),
        StateRead { tid, var, seq } => format!("{tid} read {var} (seq {seq})"),
        CvWait { tid, cv } => format!("{tid} waits on {cv}"),
        CvSignal { tid, cv } => format!("{tid} signals {cv}"),
        EventSignal { tid, event } => format!("{tid} signals {event}"),
        IrqRaised { line } => format!("{line} raised"),
        IrqHandled { line } => format!("{line} handled"),
        Syscall { tid, name } => format!("{tid} syscall {name}"),
        ProtectionFault { tid, addr } => format!("{tid} PROTECTION FAULT at {addr:#x}"),
        Note(s) => s.clone(),
    }
}

/// A busy-interval summary over a window, used by utilization reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BusySummary {
    /// Total simulated window length.
    pub window: Duration,
    /// Time some thread was running.
    pub busy: Duration,
}

impl BusySummary {
    /// CPU utilization over the window.
    pub fn utilization(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.busy.ratio(self.window)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch(from: Option<u32>, to: Option<u32>) -> TraceEvent {
        TraceEvent::ContextSwitch {
            from: from.map(ThreadId),
            to: to.map(ThreadId),
        }
    }

    #[test]
    fn counts_switches_and_misses() {
        let mut tr = Trace::new();
        tr.push(Time::ZERO, switch(None, Some(1)));
        tr.push(
            Time::from_us(5),
            TraceEvent::DeadlineMiss {
                tid: ThreadId(1),
                job: 0,
                deadline: Time::from_us(5),
            },
        );
        assert_eq!(tr.context_switch_count(), 1);
        assert_eq!(tr.deadline_miss_count(), 1);
        assert_eq!(tr.deadline_misses(), vec![(Time::from_us(5), ThreadId(1))]);
    }

    #[test]
    fn disabled_trace_counts_but_stores_nothing() {
        let mut tr = Trace::disabled();
        tr.push(Time::ZERO, switch(None, Some(1)));
        assert_eq!(tr.context_switch_count(), 1);
        assert!(tr.is_empty());
        assert!(!tr.is_recording());
    }

    #[test]
    fn context_switch_sequence_extraction() {
        let mut tr = Trace::new();
        tr.push(Time::ZERO, switch(None, Some(1)));
        tr.push(Time::from_us(1), TraceEvent::Note("x".into()));
        tr.push(Time::from_us(2), switch(Some(1), Some(2)));
        assert_eq!(
            tr.context_switch_sequence(),
            vec![
                (None, Some(ThreadId(1))),
                (Some(ThreadId(1)), Some(ThreadId(2)))
            ]
        );
    }

    #[test]
    fn execution_intervals_from_switches() {
        let mut tr = Trace::new();
        tr.push(Time::ZERO, switch(None, Some(1)));
        tr.push(Time::from_us(4), switch(Some(1), Some(2)));
        tr.push(Time::from_us(6), switch(Some(2), None));
        tr.push(Time::from_us(9), switch(None, Some(1)));
        let iv = tr.execution_intervals(Time::from_us(10));
        assert_eq!(
            iv,
            vec![
                (ThreadId(1), Time::ZERO, Time::from_us(4)),
                (ThreadId(2), Time::from_us(4), Time::from_us(6)),
                (ThreadId(1), Time::from_us(9), Time::from_us(10)),
            ]
        );
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut tr = Trace::new();
        tr.push(Time::ZERO, switch(None, Some(3)));
        tr.push(Time::from_us(1), TraceEvent::Note("hello".into()));
        let s = tr.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("ctxsw idle -> T3"));
        assert!(s.contains("hello"));
    }

    #[test]
    fn busy_summary_utilization() {
        let b = BusySummary {
            window: Duration::from_ms(10),
            busy: Duration::from_ms(4),
        };
        assert!((b.utilization() - 0.4).abs() < 1e-12);
        let empty = BusySummary {
            window: Duration::ZERO,
            busy: Duration::ZERO,
        };
        assert_eq!(empty.utilization(), 0.0);
    }
}
