//! Schedulability tests with run-time overheads.
//!
//! §5.7 decides feasibility with "workload schedulability tests for
//! CSD, EDF, and RM that take into account run-time overheads"
//! (detailed in the authors' technical report \[36\], which is not
//! available to us). We use the standard exact/safe tests of the
//! real-time literature, with every task's WCET *inflated* by its
//! per-period scheduler overhead from [`crate::overhead`]:
//!
//! - **EDF** (implicit deadlines): `U' ≤ 1`, exact.
//! - **RM**: response-time analysis, exact for fixed priorities.
//! - **CSD**: hierarchical bands — EDF inside each DP queue, queues
//!   (and the FP queue below them) in fixed priority order. Each EDF
//!   band is checked with a processor-demand test against the
//!   request-bound interference of all higher bands; FP tasks are
//!   checked with RTA against all DP tasks plus higher-priority FP
//!   tasks. The band test is *safe* (sufficient): it never accepts a
//!   workload that would miss deadlines (validated against the kernel
//!   simulator in the integration tests).

use emeralds_sim::Duration;

/// A task as seen by the tests: WCET already inflated with overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InflatedTask {
    pub period: Duration,
    pub deadline: Duration,
    /// WCET + per-period scheduler overhead.
    pub cost: Duration,
}

impl InflatedTask {
    /// Builds an inflated task.
    pub fn new(period: Duration, deadline: Duration, cost: Duration) -> Self {
        InflatedTask {
            period,
            deadline,
            cost,
        }
    }

    fn utilization(&self) -> f64 {
        self.cost.ratio(self.period)
    }
}

/// Outcome of a schedulability test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestOutcome {
    /// Provably meets all deadlines.
    Schedulable,
    /// Provably (or by the safe test) misses a deadline.
    Unschedulable,
    /// The analysis exceeded its bounds (e.g. unbounded busy period at
    /// U → 1). Consumers must treat this conservatively, as
    /// unschedulable.
    Undecided,
}

impl TestOutcome {
    /// True only for a positive proof.
    pub fn is_schedulable(self) -> bool {
        self == TestOutcome::Schedulable
    }
}

/// One CSD priority band.
#[derive(Clone, Debug)]
pub struct Band<'a> {
    /// True for an EDF (DP) band, false for the RM (FP) band.
    pub edf: bool,
    /// The band's tasks. For an RM band they must be in priority
    /// (shortest-period-first) order.
    pub tasks: &'a [InflatedTask],
}

/// Caps that keep the pseudo-polynomial analyses bounded.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisLimits {
    /// Longest busy period / response time the analysis will explore.
    pub horizon: Duration,
    /// Maximum number of demand test points per band.
    pub max_points: usize,
}

impl Default for AnalysisLimits {
    fn default() -> Self {
        AnalysisLimits {
            horizon: Duration::from_secs(30),
            max_points: 200_000,
        }
    }
}

/// Exact EDF test: `U ≤ 1` for implicit deadlines; processor-demand
/// analysis when some deadline is shorter than its period.
pub fn edf_test(tasks: &[InflatedTask]) -> TestOutcome {
    edf_test_with(tasks, AnalysisLimits::default())
}

/// [`edf_test`] with explicit analysis limits.
pub fn edf_test_with(tasks: &[InflatedTask], limits: AnalysisLimits) -> TestOutcome {
    if tasks.is_empty() {
        return TestOutcome::Schedulable;
    }
    if tasks.iter().any(|t| t.cost > t.deadline) {
        return TestOutcome::Unschedulable;
    }
    let u: f64 = tasks.iter().map(InflatedTask::utilization).sum();
    if u > 1.0 {
        return TestOutcome::Unschedulable;
    }
    if tasks.iter().all(|t| t.deadline == t.period) {
        // Liu & Layland: U ≤ 1 is exact for implicit deadlines.
        return TestOutcome::Schedulable;
    }
    edf_band_test(tasks, &[], limits)
}

/// Zhang–Burns Quick Processor-demand Analysis: an exact EDF test for
/// constrained deadlines that iterates `t ← h(t)` downward from the
/// busy period instead of enumerating every absolute deadline. Agrees
/// with [`edf_test_with`] (property-tested) while visiting far fewer
/// points.
pub fn edf_qpa(tasks: &[InflatedTask], limits: AnalysisLimits) -> TestOutcome {
    if tasks.is_empty() {
        return TestOutcome::Schedulable;
    }
    if tasks.iter().any(|t| t.cost > t.deadline) {
        return TestOutcome::Unschedulable;
    }
    let u: f64 = tasks.iter().map(InflatedTask::utilization).sum();
    if u > 1.0 {
        return TestOutcome::Unschedulable;
    }
    if tasks.iter().all(|t| t.deadline == t.period) {
        return TestOutcome::Schedulable;
    }
    // Busy period.
    let mut w: Duration = tasks.iter().map(|t| t.cost).sum();
    let mut iters = 0u32;
    let busy = loop {
        iters += 1;
        if iters > 10_000 || w > limits.horizon {
            return TestOutcome::Undecided;
        }
        let next: Duration = tasks.iter().map(|t| rbf(t, w)).sum();
        if next == w {
            break w;
        }
        w = next;
    };
    let d_min = tasks.iter().map(|t| t.deadline).min().expect("nonempty");
    let h = |l: Duration| -> Duration { tasks.iter().map(|t| dbf(t, l)).sum() };
    // Largest absolute deadline strictly below `limit`.
    let max_deadline_below = |limit: Duration| -> Option<Duration> {
        tasks
            .iter()
            .filter_map(|t| {
                if t.deadline >= limit {
                    return None;
                }
                let k = (limit - t.deadline - Duration::from_ns(1)) / t.period;
                Some(t.deadline + t.period * k)
            })
            .max()
    };
    let Some(mut t) = max_deadline_below(busy) else {
        return TestOutcome::Schedulable;
    };
    let mut steps = 0usize;
    while h(t) <= t && h(t) > d_min {
        steps += 1;
        if steps > limits.max_points {
            return TestOutcome::Undecided;
        }
        let ht = h(t);
        if ht < t {
            t = ht;
        } else {
            match max_deadline_below(t) {
                Some(next) => t = next,
                None => return TestOutcome::Schedulable,
            }
        }
    }
    if h(t) <= d_min.min(t) {
        TestOutcome::Schedulable
    } else if h(t) > t {
        TestOutcome::Unschedulable
    } else {
        TestOutcome::Schedulable
    }
}

/// Exact RM (fixed-priority) response-time analysis. `tasks` must be
/// in priority order, highest first.
pub fn rm_test(tasks: &[InflatedTask]) -> TestOutcome {
    rm_test_with(tasks, AnalysisLimits::default())
}

/// [`rm_test`] with explicit analysis limits.
pub fn rm_test_with(tasks: &[InflatedTask], limits: AnalysisLimits) -> TestOutcome {
    for (i, t) in tasks.iter().enumerate() {
        match response_time(t, &tasks[..i], &[], limits) {
            ResponseTime::Within => {}
            ResponseTime::Misses => return TestOutcome::Unschedulable,
            ResponseTime::Overflow => return TestOutcome::Undecided,
        }
    }
    TestOutcome::Schedulable
}

/// The hierarchical CSD test over priority-ordered `bands` (highest
/// first; the conventional layout is DP1, DP2, …, FP last).
pub fn csd_test(bands: &[Band<'_>]) -> TestOutcome {
    csd_test_with(bands, AnalysisLimits::default())
}

/// [`csd_test`] with explicit analysis limits.
pub fn csd_test_with(bands: &[Band<'_>], limits: AnalysisLimits) -> TestOutcome {
    let mut higher: Vec<InflatedTask> = Vec::new();
    for band in bands {
        let outcome = if band.edf {
            if higher.is_empty() && band.tasks.iter().all(|t| t.deadline == t.period) {
                edf_test_with(band.tasks, limits)
            } else {
                edf_band_test(band.tasks, &higher, limits)
            }
        } else {
            rm_band_test(band.tasks, &higher, limits)
        };
        if outcome != TestOutcome::Schedulable {
            return outcome;
        }
        higher.extend_from_slice(band.tasks);
    }
    TestOutcome::Schedulable
}

/// Request-bound function: worst-case demand of jobs of `t` *released*
/// in `[0, l)`.
fn rbf(t: &InflatedTask, l: Duration) -> Duration {
    if l.is_zero() {
        return Duration::ZERO;
    }
    // ceil(l / P) releases.
    let releases = l.as_ns().div_ceil(t.period.as_ns());
    t.cost * releases
}

/// Demand-bound function: worst-case demand of jobs of `t` with both
/// release and deadline inside `[0, l]`.
fn dbf(t: &InflatedTask, l: Duration) -> Duration {
    if l < t.deadline {
        return Duration::ZERO;
    }
    let k = (l - t.deadline) / t.period + 1;
    t.cost * k
}

/// Processor-demand test of an EDF band under higher-band interference:
/// for every absolute deadline `L` of the band up to the busy period,
/// `Σ_own dbf(L) + Σ_higher rbf(L) ≤ L`.
fn edf_band_test(
    own: &[InflatedTask],
    higher: &[InflatedTask],
    limits: AnalysisLimits,
) -> TestOutcome {
    if own.is_empty() {
        return TestOutcome::Schedulable;
    }
    if own.iter().any(|t| t.cost > t.deadline) {
        return TestOutcome::Unschedulable;
    }
    let u: f64 = own
        .iter()
        .chain(higher.iter())
        .map(InflatedTask::utilization)
        .sum();
    if u > 1.0 {
        return TestOutcome::Unschedulable;
    }
    // Synchronous busy period of own + higher: fixed point of
    // W = Σ rbf(W).
    let mut w: Duration = own.iter().chain(higher.iter()).map(|t| t.cost).sum();
    let mut iters = 0u32;
    let busy = loop {
        iters += 1;
        if iters > 10_000 {
            return TestOutcome::Undecided;
        }
        if w > limits.horizon {
            // The busy period did not converge within the horizon
            // (typically U → 1). Claiming schedulability after a
            // truncated check would be unsafe.
            return TestOutcome::Undecided;
        }
        let next: Duration = own.iter().chain(higher.iter()).map(|t| rbf(t, w)).sum();
        if next == w {
            break w;
        }
        w = next;
    };
    // Check every absolute deadline of `own` in (0, busy].
    let mut points = 0usize;
    for t in own {
        let mut d = t.deadline;
        while d <= busy {
            points += 1;
            if points > limits.max_points {
                return TestOutcome::Undecided;
            }
            let demand: Duration = own.iter().map(|x| dbf(x, d)).sum::<Duration>()
                + higher.iter().map(|x| rbf(x, d)).sum::<Duration>();
            if demand > d {
                return TestOutcome::Unschedulable;
            }
            d += t.period;
        }
    }
    TestOutcome::Schedulable
}

/// RTA of an RM band under higher-band interference.
fn rm_band_test(
    own: &[InflatedTask],
    higher: &[InflatedTask],
    limits: AnalysisLimits,
) -> TestOutcome {
    for (i, t) in own.iter().enumerate() {
        match response_time(t, &own[..i], higher, limits) {
            ResponseTime::Within => {}
            ResponseTime::Misses => return TestOutcome::Unschedulable,
            ResponseTime::Overflow => return TestOutcome::Undecided,
        }
    }
    TestOutcome::Schedulable
}

enum ResponseTime {
    Within,
    Misses,
    Overflow,
}

/// Classic response-time iteration:
/// `R = C + Σ_{j ∈ hp} ⌈R / P_j⌉ C_j`.
fn response_time(
    t: &InflatedTask,
    hp_a: &[InflatedTask],
    hp_b: &[InflatedTask],
    limits: AnalysisLimits,
) -> ResponseTime {
    let mut r = t.cost;
    let mut iters = 0u32;
    loop {
        iters += 1;
        if iters > 10_000 {
            return ResponseTime::Overflow;
        }
        if r > t.deadline {
            return ResponseTime::Misses;
        }
        if r > limits.horizon {
            return ResponseTime::Overflow;
        }
        let next = t.cost
            + hp_a.iter().map(|x| rbf(x, r)).sum::<Duration>()
            + hp_b.iter().map(|x| rbf(x, r)).sum::<Duration>();
        if next == r {
            return ResponseTime::Within;
        }
        r = next;
    }
}

// --- Stack Resource Policy: offline ceiling computation (§SRP) ---
//
// The rival to the paper's run-time priority-inheritance protocol:
// compute a static *ceiling* per resource from the task/resource graph
// (which tasks lock which resources), prove the graph free of the
// shapes that could deadlock or block unboundedly, and let the kernel
// enforce a single system-ceiling stack at run time. Everything here
// is policy-agnostic graph analysis — the kernel hands us abstract
// lock/unlock/block event sequences, one per task, and gets back
// either the ceiling table or a typed rejection.

/// One abstract locking-relevant step of a task body, in program
/// order. Produced by the kernel builder from a task's action script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrpEvent {
    /// The task locks resource `r` (and holds it until the matching
    /// release).
    Acquire(usize),
    /// The task unlocks resource `r`.
    Release(usize),
    /// The task makes a blocking call that is *not* a resource
    /// acquisition (event wait, sleep, IPC receive, ...).
    Block,
}

/// One task's locking profile: its preemption level and the ordered
/// locking-relevant events of one job/iteration of its body.
#[derive(Clone, Debug)]
pub struct SrpTaskProfile {
    /// Static preemption level; **lower value = higher level** (the
    /// RM/DM rank order, which is also the relative-deadline order the
    /// SRP admission test needs under EDF).
    pub level: u32,
    /// Locking events in program order.
    pub events: Vec<SrpEvent>,
}

/// Why an SRP resource graph was rejected at configuration time.
/// Every variant names the offending task/resource indices so the
/// builder can map them back to names and ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SrpGraphError {
    /// A task acquires a resource it already holds: guaranteed
    /// self-deadlock under single-owner locking.
    AcquireWhileHeld { task: usize, resource: usize },
    /// A task releases a resource it does not hold.
    ReleaseNotHeld { task: usize, resource: usize },
    /// Releases are not properly nested (LIFO): the system-ceiling
    /// stack requires critical sections to nest like a stack.
    NonNestedRelease { task: usize, resource: usize },
    /// A job ends (or a loop iteration wraps) still holding a
    /// resource: the critical section is unbounded.
    HeldAtEnd { task: usize, resource: usize },
    /// A task makes a non-lock blocking call while holding a resource:
    /// under SRP a job must run to release without self-suspending, or
    /// the single-blocking bound is lost.
    BlockWhileHolding { task: usize, holding: usize },
    /// The resource order graph has a cycle (some task acquires `b`
    /// while holding `a` and, transitively, vice versa): deadlock-prone
    /// under any policy that does not serialize the whole cycle.
    LockOrderCycle { resources: Vec<usize> },
}

impl core::fmt::Display for SrpGraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SrpGraphError::AcquireWhileHeld { task, resource } => write!(
                f,
                "SRP: task {task} acquires resource {resource} while already holding it"
            ),
            SrpGraphError::ReleaseNotHeld { task, resource } => write!(
                f,
                "SRP: task {task} releases resource {resource} it does not hold"
            ),
            SrpGraphError::NonNestedRelease { task, resource } => write!(
                f,
                "SRP: task {task} releases resource {resource} out of nesting (LIFO) order"
            ),
            SrpGraphError::HeldAtEnd { task, resource } => write!(
                f,
                "SRP: task {task} ends its job still holding resource {resource}"
            ),
            SrpGraphError::BlockWhileHolding { task, holding } => write!(
                f,
                "SRP: task {task} makes a blocking call while holding resource {holding}"
            ),
            SrpGraphError::LockOrderCycle { resources } => {
                write!(f, "SRP: resource lock-order cycle: ")?;
                for (i, r) in resources.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
        }
    }
}

/// Computes the SRP ceiling table for `resources` resources from the
/// task profiles, validating the graph on the way.
///
/// The ceiling of a resource is the **minimum** preemption-level value
/// (= highest level) among the tasks that acquire it; `None` for a
/// resource no task acquires. Rejections are typed ([`SrpGraphError`])
/// and cover exactly the shapes that would break the SRP guarantees:
/// improper nesting, self-deadlock, blocking inside a critical
/// section, and lock-order cycles.
pub fn srp_ceilings(
    resources: usize,
    tasks: &[SrpTaskProfile],
) -> Result<Vec<Option<u32>>, SrpGraphError> {
    let mut ceilings: Vec<Option<u32>> = vec![None; resources];
    // Resource order edges: `order[a]` holds every `b` some task
    // acquires while holding `a`.
    let mut order: Vec<Vec<usize>> = vec![Vec::new(); resources];
    for (ti, t) in tasks.iter().enumerate() {
        let mut held: Vec<usize> = Vec::new();
        for ev in &t.events {
            match *ev {
                SrpEvent::Acquire(r) => {
                    if held.contains(&r) {
                        return Err(SrpGraphError::AcquireWhileHeld {
                            task: ti,
                            resource: r,
                        });
                    }
                    for &h in &held {
                        if !order[h].contains(&r) {
                            order[h].push(r);
                        }
                    }
                    held.push(r);
                    let c = ceilings[r].get_or_insert(t.level);
                    *c = (*c).min(t.level);
                }
                SrpEvent::Release(r) => match held.last() {
                    Some(&top) if top == r => {
                        held.pop();
                    }
                    Some(_) if held.contains(&r) => {
                        return Err(SrpGraphError::NonNestedRelease {
                            task: ti,
                            resource: r,
                        });
                    }
                    _ => {
                        return Err(SrpGraphError::ReleaseNotHeld {
                            task: ti,
                            resource: r,
                        });
                    }
                },
                SrpEvent::Block => {
                    if let Some(&h) = held.first() {
                        return Err(SrpGraphError::BlockWhileHolding {
                            task: ti,
                            holding: h,
                        });
                    }
                }
            }
        }
        if let Some(&h) = held.first() {
            return Err(SrpGraphError::HeldAtEnd {
                task: ti,
                resource: h,
            });
        }
    }
    if let Some(cycle) = find_cycle(&order) {
        return Err(SrpGraphError::LockOrderCycle { resources: cycle });
    }
    Ok(ceilings)
}

/// Finds one cycle in the resource order graph (iterative DFS with
/// three-color marking); returns the cycle path closed on itself.
fn find_cycle(order: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark = vec![Mark::White; order.len()];
    let mut path: Vec<usize> = Vec::new();
    for start in 0..order.len() {
        if mark[start] != Mark::White {
            continue;
        }
        // Stack of (node, next edge index to try).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        path.push(start);
        while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
            if let Some(&next) = order[node].get(*edge) {
                *edge += 1;
                match mark[next] {
                    Mark::Grey => {
                        // Cycle: slice the current path from `next`.
                        let from = path.iter().position(|&n| n == next).expect("grey on path");
                        let mut cycle: Vec<usize> = path[from..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Mark::White => {
                        mark[next] = Mark::Grey;
                        path.push(next);
                        stack.push((next, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                mark[node] = Mark::Black;
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(period_ms: u64, cost_us: u64) -> InflatedTask {
        InflatedTask::new(
            Duration::from_ms(period_ms),
            Duration::from_ms(period_ms),
            Duration::from_us(cost_us),
        )
    }

    #[test]
    fn edf_accepts_full_utilization() {
        // U = 1.0 exactly.
        let ts = [t(10, 5_000), t(20, 10_000)];
        assert_eq!(edf_test(&ts), TestOutcome::Schedulable);
    }

    #[test]
    fn edf_rejects_over_utilization() {
        let ts = [t(10, 6_000), t(20, 10_000)];
        assert_eq!(edf_test(&ts), TestOutcome::Unschedulable);
    }

    #[test]
    fn edf_empty_set_schedulable() {
        assert_eq!(edf_test(&[]), TestOutcome::Schedulable);
    }

    #[test]
    fn rm_accepts_harmonic_full_utilization() {
        // Harmonic periods schedule to U = 1 under RM.
        let ts = [t(10, 5_000), t(20, 10_000)];
        assert_eq!(rm_test(&ts), TestOutcome::Schedulable);
    }

    #[test]
    fn rm_rejects_classic_nonharmonic_case() {
        // Two tasks, U ≈ 0.97 > 2(√2−1) with non-harmonic periods:
        // τ1 = (5ms, 2.5ms), τ2 = (7ms, 3.3ms). RTA: R2 = 3.3 + 2·2.5
        // = 8.3 > 7.
        let ts = [t(5, 2_500), t(7, 3_300)];
        assert_eq!(rm_test(&ts), TestOutcome::Unschedulable);
        assert_eq!(edf_test(&ts), TestOutcome::Schedulable);
    }

    #[test]
    fn rm_exactness_on_boundary_case() {
        // τ1 = (4, 1), τ2 = (6, 2), τ3 = (12, 3): R3 = 3 + 3·1 + 2·2
        // = 10 ≤ 12 → schedulable at U = 0.25+0.333+0.25 = 0.833.
        let ts = [t(4, 1_000), t(6, 2_000), t(12, 3_000)];
        assert_eq!(rm_test(&ts), TestOutcome::Schedulable);
    }

    /// The paper's Table 2 situation: the workload is feasible under
    /// EDF but the "troublesome" long-period task misses under RM.
    #[test]
    fn table2_like_workload_feasible_edf_not_rm() {
        let ts = [
            t(4, 1_000),
            t(5, 1_000),
            t(6, 1_000),
            t(7, 900),
            t(9, 300),
            t(50, 2_200),
            t(60, 1_600),
            t(100, 1_500),
            t(200, 2_000),
            t(400, 2_200),
        ];
        let u: f64 = ts.iter().map(|x| x.cost.ratio(x.period)).sum();
        assert!((u - 0.88).abs() < 0.01, "U = {u}");
        assert_eq!(edf_test(&ts), TestOutcome::Schedulable);
        assert_eq!(rm_test(&ts), TestOutcome::Unschedulable);
    }

    #[test]
    fn csd_bands_beat_pure_rm_on_table2_workload() {
        // DP band takes the five short-period tasks (EDF), FP band the
        // long ones: feasible, while pure RM is not.
        let all = [
            t(4, 1_000),
            t(5, 1_000),
            t(6, 1_000),
            t(7, 900),
            t(9, 300),
            t(50, 2_200),
            t(60, 1_600),
            t(100, 1_500),
            t(200, 2_000),
            t(400, 2_200),
        ];
        let bands = [
            Band {
                edf: true,
                tasks: &all[..5],
            },
            Band {
                edf: false,
                tasks: &all[5..],
            },
        ];
        assert_eq!(csd_test(&bands), TestOutcome::Schedulable);
    }

    #[test]
    fn csd_single_edf_band_equals_edf_test() {
        let ts = [t(10, 5_000), t(20, 10_000)];
        let bands = [Band {
            edf: true,
            tasks: &ts,
        }];
        assert_eq!(csd_test(&bands), edf_test(&ts));
    }

    #[test]
    fn csd_detects_lower_band_starvation() {
        // DP band hogs the CPU; FP task can't fit.
        let dp = [t(2, 1_900)];
        let fp = [t(10, 2_000)];
        let bands = [
            Band {
                edf: true,
                tasks: &dp,
            },
            Band {
                edf: false,
                tasks: &fp,
            },
        ];
        assert_eq!(csd_test(&bands), TestOutcome::Unschedulable);
    }

    #[test]
    fn csd_multiple_dp_bands() {
        let dp1 = [t(5, 1_000)];
        let dp2 = [t(10, 2_000)];
        let fp = [t(100, 10_000)];
        let bands = [
            Band {
                edf: true,
                tasks: &dp1,
            },
            Band {
                edf: true,
                tasks: &dp2,
            },
            Band {
                edf: false,
                tasks: &fp,
            },
        ];
        assert_eq!(csd_test(&bands), TestOutcome::Schedulable);
    }

    #[test]
    fn constrained_deadline_edf_uses_demand_analysis() {
        // Deadline < period: U < 1 but density over 1 at the deadline.
        let tight = InflatedTask::new(
            Duration::from_ms(10),
            Duration::from_ms(2),
            Duration::from_ms(3),
        );
        assert_eq!(edf_test(&[tight]), TestOutcome::Unschedulable);
        let ok = InflatedTask::new(
            Duration::from_ms(10),
            Duration::from_ms(5),
            Duration::from_ms(3),
        );
        assert_eq!(edf_test(&[ok]), TestOutcome::Schedulable);
    }

    #[test]
    fn rbf_and_dbf_shapes() {
        let x = t(10, 2_000);
        assert_eq!(rbf(&x, Duration::ZERO), Duration::ZERO);
        assert_eq!(rbf(&x, Duration::from_ms(1)), Duration::from_us(2_000));
        assert_eq!(rbf(&x, Duration::from_ms(10)), Duration::from_us(2_000));
        assert_eq!(rbf(&x, Duration::from_ms(11)), Duration::from_us(4_000));
        assert_eq!(dbf(&x, Duration::from_ms(9)), Duration::ZERO);
        assert_eq!(dbf(&x, Duration::from_ms(10)), Duration::from_us(2_000));
        assert_eq!(dbf(&x, Duration::from_ms(20)), Duration::from_us(4_000));
    }

    #[test]
    fn qpa_agrees_with_demand_analysis() {
        use emeralds_sim::SimRng;
        let mut rng = SimRng::seeded(99);
        let mut checked = 0;
        for _ in 0..300 {
            let n = rng.int_in(1, 6) as usize;
            let tasks: Vec<InflatedTask> = (0..n)
                .map(|_| {
                    let p = Duration::from_us(rng.int_in(2_000, 50_000));
                    let d = Duration::from_ns((p.as_ns() as f64 * rng.float_in(0.3, 1.0)) as u64);
                    let c = Duration::from_ns((d.as_ns() as f64 * rng.float_in(0.05, 0.6)) as u64)
                        .max(Duration::from_ns(1));
                    InflatedTask::new(p, d, c)
                })
                .collect();
            let limits = AnalysisLimits::default();
            let full = edf_test_with(&tasks, limits);
            let quick = edf_qpa(&tasks, limits);
            if full != TestOutcome::Undecided && quick != TestOutcome::Undecided {
                checked += 1;
                assert_eq!(full, quick, "disagreement on {tasks:?}");
            }
        }
        assert!(checked > 200, "only {checked} decisive cases");
    }

    #[test]
    fn qpa_basic_cases() {
        let limits = AnalysisLimits::default();
        assert_eq!(edf_qpa(&[], limits), TestOutcome::Schedulable);
        let ok = InflatedTask::new(
            Duration::from_ms(10),
            Duration::from_ms(5),
            Duration::from_ms(3),
        );
        assert_eq!(edf_qpa(&[ok], limits), TestOutcome::Schedulable);
        let bad = InflatedTask::new(
            Duration::from_ms(10),
            Duration::from_ms(2),
            Duration::from_ms(3),
        );
        assert_eq!(edf_qpa(&[bad], limits), TestOutcome::Unschedulable);
    }

    #[test]
    fn undecided_when_busy_period_exceeds_horizon() {
        // Constrained deadlines force the demand path; U extremely
        // close to 1 with a tiny horizon exhausts the analysis.
        let a = InflatedTask::new(
            Duration::from_ms(3),
            Duration::from_ms(2),
            Duration::from_us(1_999),
        );
        let b = InflatedTask::new(
            Duration::from_ms(9),
            Duration::from_ms(9),
            Duration::from_us(2_999),
        );
        let limits = AnalysisLimits {
            horizon: Duration::from_ms(1),
            max_points: 10,
        };
        let out = edf_test_with(&[a, b], limits);
        assert_ne!(out, TestOutcome::Schedulable);
    }

    // --- SRP ceiling analysis ---

    use SrpEvent::{Acquire, Block, Release};

    fn profile(level: u32, events: Vec<SrpEvent>) -> SrpTaskProfile {
        SrpTaskProfile { level, events }
    }

    #[test]
    fn ceilings_are_min_level_of_users() {
        let tasks = [
            profile(0, vec![Acquire(0), Release(0)]),
            profile(2, vec![Acquire(0), Release(0), Acquire(1), Release(1)]),
            profile(5, vec![Acquire(1), Release(1)]),
        ];
        let c = srp_ceilings(3, &tasks).unwrap();
        assert_eq!(c, vec![Some(0), Some(2), None]);
    }

    #[test]
    fn nested_sections_allowed_when_lifo() {
        let tasks = [profile(
            1,
            vec![Acquire(0), Acquire(1), Release(1), Release(0)],
        )];
        let c = srp_ceilings(2, &tasks).unwrap();
        assert_eq!(c, vec![Some(1), Some(1)]);
    }

    #[test]
    fn non_lifo_release_rejected() {
        let tasks = [profile(
            1,
            vec![Acquire(0), Acquire(1), Release(0), Release(1)],
        )];
        assert_eq!(
            srp_ceilings(2, &tasks),
            Err(SrpGraphError::NonNestedRelease {
                task: 0,
                resource: 0
            })
        );
    }

    #[test]
    fn self_deadlock_rejected() {
        let tasks = [profile(0, vec![Acquire(0), Acquire(0)])];
        assert_eq!(
            srp_ceilings(1, &tasks),
            Err(SrpGraphError::AcquireWhileHeld {
                task: 0,
                resource: 0
            })
        );
    }

    #[test]
    fn release_without_hold_rejected() {
        let tasks = [profile(0, vec![Release(0)])];
        assert_eq!(
            srp_ceilings(1, &tasks),
            Err(SrpGraphError::ReleaseNotHeld {
                task: 0,
                resource: 0
            })
        );
    }

    #[test]
    fn held_at_job_end_rejected() {
        let tasks = [profile(0, vec![Acquire(0)])];
        assert_eq!(
            srp_ceilings(1, &tasks),
            Err(SrpGraphError::HeldAtEnd {
                task: 0,
                resource: 0
            })
        );
    }

    #[test]
    fn blocking_inside_critical_section_rejected() {
        let tasks = [profile(0, vec![Acquire(0), Block, Release(0)])];
        assert_eq!(
            srp_ceilings(1, &tasks),
            Err(SrpGraphError::BlockWhileHolding {
                task: 0,
                holding: 0
            })
        );
    }

    #[test]
    fn lock_order_cycle_rejected() {
        // Task 0: A then B nested; task 1: B then A nested — the
        // classic deadlock-prone shape.
        let tasks = [
            profile(0, vec![Acquire(0), Acquire(1), Release(1), Release(0)]),
            profile(1, vec![Acquire(1), Acquire(0), Release(0), Release(1)]),
        ];
        let err = srp_ceilings(2, &tasks).unwrap_err();
        let SrpGraphError::LockOrderCycle { resources } = err else {
            panic!("expected cycle, got {err:?}");
        };
        // The cycle closes on itself and visits both resources.
        assert_eq!(resources.first(), resources.last());
        assert!(resources.contains(&0) && resources.contains(&1));
    }

    #[test]
    fn three_resource_cycle_found_through_chain() {
        // 0 -> 1 (task 0), 1 -> 2 (task 1), 2 -> 0 (task 2).
        let tasks = [
            profile(0, vec![Acquire(0), Acquire(1), Release(1), Release(0)]),
            profile(1, vec![Acquire(1), Acquire(2), Release(2), Release(1)]),
            profile(2, vec![Acquire(2), Acquire(0), Release(0), Release(2)]),
        ];
        assert!(matches!(
            srp_ceilings(3, &tasks),
            Err(SrpGraphError::LockOrderCycle { .. })
        ));
    }

    #[test]
    fn blocking_outside_critical_sections_is_fine() {
        let tasks = [profile(3, vec![Block, Acquire(0), Release(0), Block])];
        assert_eq!(srp_ceilings(1, &tasks).unwrap(), vec![Some(3)]);
    }

    #[test]
    fn graph_error_display_is_descriptive() {
        let e = SrpGraphError::BlockWhileHolding {
            task: 4,
            holding: 2,
        };
        assert!(e.to_string().contains("task 4"));
        assert!(e.to_string().contains("holding resource 2"));
        let c = SrpGraphError::LockOrderCycle {
            resources: vec![0, 1, 0],
        };
        assert_eq!(c.to_string(), "SRP: resource lock-order cycle: 0 -> 1 -> 0");
    }
}
