//! State-message IPC (§7, reconstructed — see DESIGN.md).
//!
//! A state message is a single-writer, multi-reader shared variable
//! with *state semantics*: a new value overwrites the old one, reading
//! does not consume, and neither side ever blocks. The implementation
//! is an N-deep circular buffer in shared memory:
//!
//! - the writer bumps a sequence number and copies the new value into
//!   slot `seq mod N`;
//! - a reader snapshots the sequence number, copies slot
//!   `seq mod N`, and re-checks the sequence number; if the writer has
//!   advanced by `N − 1` or more in the meantime the slot may have
//!   been overwritten mid-copy and the reader retries.
//!
//! With `N` sized from the timing bounds — the writer cannot wrap a
//! whole buffer within any reader's worst-case preempted read — the
//! retry never fires and reads/writes are wait-free with *no kernel
//! involvement after setup*. That is the entire point: a mailbox
//! transfer costs two syscalls plus two kernel copies; a state-message
//! access is one user-space copy loop.
//!
//! [`required_depth`] gives the sizing rule, and the `protocol` module
//! exposes a step-wise simulator of the read/write races used by the
//! property tests to show (a) the depth bound is sufficient and (b) a
//! 1-deep buffer is genuinely torn by preemption.

use std::cell::Cell;

use emeralds_sim::{Duration, RegionId, StateId, ThreadId};

/// A state-message variable.
#[derive(Clone, Debug)]
pub struct StateMsgVar {
    pub id: StateId,
    /// Payload size in bytes (drives the copy-cost model).
    pub size: usize,
    /// Buffer depth N.
    pub depth: usize,
    /// The only thread allowed to write.
    pub writer: ThreadId,
    /// Shared-memory region backing the buffer.
    pub region: RegionId,
    /// Sequence number of the freshest complete value (0 = never
    /// written).
    pub seq: u64,
    /// The slot values (abstract payload words).
    slots: Vec<u32>,
    /// Lifetime statistics. Kept in `Cell`s so the wait-free read path
    /// can take `&self`, matching the single-writer/multi-reader
    /// semantics of §7 (a read mutates nothing an observer can race
    /// on).
    writes: Cell<u64>,
    reads: Cell<u64>,
    /// Reads that observed the writer advance past a full buffer wrap
    /// mid-copy and restarted. With the buffer sized by
    /// [`required_depth`] this stays zero — the wait-free guarantee the
    /// metrics snapshot reports.
    retries: Cell<u64>,
}

impl StateMsgVar {
    /// Creates a variable with the given buffer depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `size` is zero.
    pub fn new(
        id: StateId,
        writer: ThreadId,
        region: RegionId,
        size: usize,
        depth: usize,
    ) -> StateMsgVar {
        assert!(depth >= 1, "state message needs at least one slot");
        assert!(size >= 1, "empty state message");
        StateMsgVar {
            id,
            size,
            depth,
            writer,
            region,
            seq: 0,
            slots: vec![0; depth],
            writes: Cell::new(0),
            reads: Cell::new(0),
            retries: Cell::new(0),
        }
    }

    /// Writer-side update (single writer enforced).
    ///
    /// # Panics
    ///
    /// Panics if called by a thread other than the registered writer.
    pub fn write(&mut self, tid: ThreadId, value: u32) {
        assert_eq!(tid, self.writer, "{}: write by non-writer {tid}", self.id);
        let next = self.seq + 1;
        self.slots[(next % self.depth as u64) as usize] = value;
        self.seq = next;
        self.writes.set(self.writes.get() + 1);
    }

    /// Reader-side access: the freshest complete value (0 before the
    /// first write, matching a zero-initialized shared buffer).
    /// Takes `&self` — a state-message read is wait-free and never
    /// perturbs the variable (§7); only the lifetime `reads` counter
    /// advances, through a `Cell`.
    pub fn read(&self) -> u32 {
        self.reads.set(self.reads.get() + 1);
        // The sequence re-check of the §7 reader protocol. A kernel-sim
        // read is atomic in virtual time, so the writer cannot have
        // advanced between the snapshot and the copy; the check (and
        // the retry counter it would bump) exists so the metrics layer
        // reports the wait-free guarantee rather than assuming it.
        let start_seq = self.seq;
        let value = self.slots[(start_seq % self.depth as u64) as usize];
        if self.seq.saturating_sub(start_seq) >= self.depth as u64 - 1 && self.depth > 1 {
            self.retries.set(self.retries.get() + 1);
        }
        value
    }

    /// Lifetime write count.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Lifetime read count.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Lifetime read-retry count (zero when the buffer depth honours
    /// the [`required_depth`] bound).
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// RAM the variable occupies (buffer + header), for the footprint
    /// report.
    pub fn ram_bytes(&self) -> usize {
        self.depth * self.size + 16
    }
}

/// The §7 buffer-depth sizing rule: the writer must not be able to
/// wrap the whole buffer during one worst-case read.
///
/// A reader's copy can be preempted for at most `max_read_span` (its
/// own copy time plus the worst-case preemption it can suffer). During
/// that span the writer produces at most
/// `ceil(max_read_span / writer_period)` new versions; the buffer
/// needs room for those plus the slot being read and the slot being
/// written.
pub fn required_depth(writer_period: Duration, max_read_span: Duration) -> usize {
    assert!(!writer_period.is_zero(), "writer period must be positive");
    let span = max_read_span.as_ns();
    let period = writer_period.as_ns();
    let new_versions = span.div_ceil(period);
    (new_versions + 2) as usize
}

/// A step-wise model of the lock-free read/write protocol, used to
/// *demonstrate* the consistency argument the paper makes informally.
/// Each byte-copy is an individual step, so a test can interleave a
/// writer and readers arbitrarily and check for torn reads.
pub mod protocol {
    /// One version-stamped buffer of `size` abstract bytes. A write of
    /// version `v` fills the slot with the value `v`; a consistent
    /// read must observe a single version across all bytes.
    #[derive(Clone, Debug)]
    pub struct Buffer {
        pub depth: usize,
        pub size: usize,
        /// `bytes[slot][i]` = version that wrote byte `i` of `slot`.
        bytes: Vec<Vec<u64>>,
        /// Published sequence number.
        pub seq: u64,
    }

    impl Buffer {
        /// Creates a zeroed buffer.
        pub fn new(depth: usize, size: usize) -> Buffer {
            Buffer {
                depth,
                size,
                bytes: vec![vec![0; size]; depth],
                seq: 0,
            }
        }
    }

    /// An in-progress write: copies one byte per step, then publishes.
    #[derive(Clone, Copy, Debug)]
    pub struct Writer {
        version: u64,
        slot: usize,
        next_byte: usize,
    }

    impl Writer {
        /// Starts writing version `buf.seq + 1`.
        pub fn start(buf: &Buffer) -> Writer {
            let version = buf.seq + 1;
            Writer {
                version,
                slot: (version % buf.depth as u64) as usize,
                next_byte: 0,
            }
        }

        /// Copies one byte; returns true when the write has been
        /// published.
        pub fn step(&mut self, buf: &mut Buffer) -> bool {
            if self.next_byte < buf.size {
                buf.bytes[self.slot][self.next_byte] = self.version;
                self.next_byte += 1;
                false
            } else {
                buf.seq = self.version;
                true
            }
        }
    }

    /// An in-progress read: snapshots the sequence, copies one byte
    /// per step, re-checks, and reports the observed bytes.
    #[derive(Clone, Debug)]
    pub struct Reader {
        snapshot: u64,
        slot: usize,
        got: Vec<u64>,
    }

    /// Outcome of a completed read.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum ReadResult {
        /// All bytes carried one version.
        Consistent(u64),
        /// The re-check detected a possible overwrite → retry needed.
        Retry,
        /// The bytes actually disagreed (torn read) — must never
        /// happen when the re-check is honest, but a 1-deep buffer
        /// *without* the check produces it.
        Torn,
    }

    impl Reader {
        /// Starts a read of the freshest slot.
        pub fn start(buf: &Buffer) -> Reader {
            Reader {
                snapshot: buf.seq,
                slot: (buf.seq % buf.depth as u64) as usize,
                got: Vec::with_capacity(buf.size),
            }
        }

        /// Copies one byte; `Some(result)` when finished.
        pub fn step(&mut self, buf: &Buffer) -> Option<ReadResult> {
            if self.got.len() < buf.size {
                self.got.push(buf.bytes[self.slot][self.got.len()]);
                None
            } else {
                Some(self.finish(buf, true))
            }
        }

        /// Finishes the read. `with_check` applies the sequence
        /// re-check; disabling it models a naive single-buffer reader.
        pub fn finish(&self, buf: &Buffer, with_check: bool) -> ReadResult {
            if with_check && buf.seq.saturating_sub(self.snapshot) >= buf.depth as u64 - 1 {
                return ReadResult::Retry;
            }
            let first = self.got[0];
            if self.got.iter().all(|&v| v == first) {
                ReadResult::Consistent(first)
            } else {
                ReadResult::Torn
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::protocol::{Buffer, ReadResult, Reader, Writer};
    use super::*;

    #[test]
    fn write_then_read_returns_latest() {
        let mut v = StateMsgVar::new(StateId(0), ThreadId(1), RegionId(0), 16, 3);
        assert_eq!(v.read(), 0, "unwritten variable reads as zero");
        v.write(ThreadId(1), 42);
        v.write(ThreadId(1), 43);
        assert_eq!(v.read(), 43);
        assert_eq!(v.writes(), 2);
        assert_eq!(v.reads(), 2);
    }

    #[test]
    #[should_panic(expected = "non-writer")]
    fn single_writer_enforced() {
        let mut v = StateMsgVar::new(StateId(0), ThreadId(1), RegionId(0), 16, 3);
        v.write(ThreadId(2), 1);
    }

    #[test]
    fn reads_do_not_consume() {
        let mut v = StateMsgVar::new(StateId(0), ThreadId(0), RegionId(0), 4, 2);
        v.write(ThreadId(0), 7);
        assert_eq!(v.read(), 7);
        assert_eq!(v.read(), 7);
        assert_eq!(v.read(), 7);
    }

    #[test]
    fn depth_rule_examples() {
        // Reader can be stalled 25 ms; writer runs every 10 ms →
        // ceil(25/10) = 3 new versions + 2 = depth 5.
        assert_eq!(
            required_depth(Duration::from_ms(10), Duration::from_ms(25)),
            5
        );
        // Fast reader (no preemption beyond its own copy): depth 3.
        assert_eq!(
            required_depth(Duration::from_ms(10), Duration::from_ms(1)),
            3
        );
    }

    #[test]
    fn ram_accounting() {
        let v = StateMsgVar::new(StateId(0), ThreadId(0), RegionId(0), 16, 4);
        assert_eq!(v.ram_bytes(), 4 * 16 + 16);
    }

    /// The protocol model: an uninterrupted write then read is
    /// consistent.
    #[test]
    fn protocol_sequential_is_consistent() {
        let mut buf = Buffer::new(3, 8);
        let mut w = Writer::start(&buf);
        while !w.step(&mut buf) {}
        let mut r = Reader::start(&buf);
        loop {
            if let Some(res) = r.step(&buf) {
                assert_eq!(res, ReadResult::Consistent(1));
                break;
            }
        }
    }

    /// A 1-deep buffer with the check disabled IS torn by a write that
    /// preempts the read — the failure mode the N-deep design exists
    /// to prevent.
    #[test]
    fn single_slot_without_check_tears() {
        let mut buf = Buffer::new(1, 8);
        // Complete version 1.
        let mut w = Writer::start(&buf);
        while !w.step(&mut buf) {}
        // Reader copies half, then the writer overwrites in place.
        let mut r = Reader::start(&buf);
        for _ in 0..4 {
            assert!(r.step(&buf).is_none());
        }
        let mut w2 = Writer::start(&buf);
        while !w2.step(&mut buf) {}
        for _ in 0..4 {
            r.step(&buf);
        }
        assert_eq!(r.finish(&buf, false), ReadResult::Torn);
        // The sequence re-check would have caught it.
        assert_eq!(r.finish(&buf, true), ReadResult::Retry);
    }

    /// With a properly sized buffer, a reader interleaved with several
    /// writes still reads consistently: the writer never reuses the
    /// slot under the reader.
    #[test]
    fn deep_buffer_tolerates_interleaved_writes() {
        let mut buf = Buffer::new(4, 8);
        let mut w = Writer::start(&buf);
        while !w.step(&mut buf) {}
        let mut r = Reader::start(&buf);
        for _ in 0..4 {
            assert!(r.step(&buf).is_none());
        }
        // Two full writes land while the read is paused — within the
        // depth-4 budget (seq advances by 2 < depth−1 = 3).
        for _ in 0..2 {
            let mut w = Writer::start(&buf);
            while !w.step(&mut buf) {}
        }
        let res = loop {
            if let Some(res) = r.step(&buf) {
                break res;
            }
        };
        assert_eq!(res, ReadResult::Consistent(1));
    }
}
