//! Multi-threaded protected processes (§3: "Multi-threaded processes:
//! Full memory protection for threads. Threads are scheduled by the
//! kernel.").

use emeralds_sim::{ProcId, RegionId, ThreadId};

/// A process: an address space (a set of MPU regions) holding threads.
#[derive(Clone, Debug)]
pub struct Process {
    pub id: ProcId,
    pub name: String,
    pub threads: Vec<ThreadId>,
    pub regions: Vec<RegionId>,
}

impl Process {
    /// Creates an empty process.
    pub fn new(id: ProcId, name: impl Into<String>) -> Process {
        Process {
            id,
            name: name.into(),
            threads: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Registers a thread.
    pub fn add_thread(&mut self, tid: ThreadId) {
        debug_assert!(!self.threads.contains(&tid));
        self.threads.push(tid);
    }

    /// Registers an MPU region.
    pub fn add_region(&mut self, rid: RegionId) {
        debug_assert!(!self.regions.contains(&rid));
        self.regions.push(rid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_tracks_threads_and_regions() {
        let mut p = Process::new(ProcId(0), "engine");
        p.add_thread(ThreadId(0));
        p.add_thread(ThreadId(1));
        p.add_region(RegionId(3));
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.regions, vec![RegionId(3)]);
        assert_eq!(p.name, "engine");
    }
}
