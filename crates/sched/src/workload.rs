//! Random workload generation (§5.7).
//!
//! "To mimic the mix of short and long period tasks expected in
//! real-time embedded systems, we generate the base task workloads by
//! randomly selecting task periods such that each period has an equal
//! probability of being single-digit (5–9 ms), double-digit
//! (10–99 ms), or triple-digit (100–999 ms)." Execution times are then
//! drawn and normalized to a base utilization; the breakdown driver
//! scales them from there. Figures 4 and 5 divide all periods by 2
//! and 3.

use emeralds_sim::{Duration, SimRng};

use crate::task::{Task, TaskSet};

/// Parameters of one random workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Number of tasks `n`.
    pub n: usize,
    /// Divide every period by this factor (1 for Figure 3, 2 for
    /// Figure 4, 3 for Figure 5).
    pub period_divisor: u64,
    /// Total utilization the generated WCETs are normalized to. The
    /// breakdown search rescales anyway; 0.5 keeps initial sets
    /// comfortably feasible.
    pub base_utilization: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            n: 10,
            period_divisor: 1,
            base_utilization: 0.5,
        }
    }
}

impl WorkloadParams {
    /// Generates one workload.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, the divisor is 0, or the base utilization is
    /// not in `(0, 1]`.
    pub fn generate(&self, rng: &mut SimRng) -> TaskSet {
        assert!(self.n > 0, "empty workload");
        assert!(self.period_divisor >= 1, "zero period divisor");
        assert!(
            self.base_utilization > 0.0 && self.base_utilization <= 1.0,
            "base utilization out of range"
        );
        let mut periods = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let ms = match rng.index(3) {
                0 => rng.int_in(5, 9),
                1 => rng.int_in(10, 99),
                _ => rng.int_in(100, 999),
            };
            // Divide in microseconds so ÷2 and ÷3 stay exact enough.
            let us = ms * 1_000 / self.period_divisor;
            periods.push(Duration::from_us(us));
        }
        // Random utilization shares, normalized to the base.
        let shares: Vec<f64> = (0..self.n).map(|_| rng.float_in(0.1, 1.0)).collect();
        let total: f64 = shares.iter().sum();
        let tasks = periods
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let u = self.base_utilization * shares[i] / total;
                let wcet = p.scale_f64(u);
                let wcet = if wcet.is_zero() {
                    Duration::from_ns(1_000)
                } else {
                    wcet
                };
                Task::new(i, p, wcet)
            })
            .collect();
        TaskSet::new(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size_and_utilization() {
        let mut rng = SimRng::seeded(1);
        let ts = WorkloadParams {
            n: 30,
            period_divisor: 1,
            base_utilization: 0.5,
        }
        .generate(&mut rng);
        assert_eq!(ts.len(), 30);
        assert!(
            (ts.utilization() - 0.5).abs() < 0.02,
            "U = {}",
            ts.utilization()
        );
    }

    #[test]
    fn periods_fall_in_the_three_digit_classes() {
        let mut rng = SimRng::seeded(2);
        let ts = WorkloadParams {
            n: 300,
            period_divisor: 1,
            base_utilization: 0.3,
        }
        .generate(&mut rng);
        let mut classes = [0usize; 3];
        for t in ts.tasks() {
            let ms = t.period.as_ms_f64();
            assert!((5.0..1000.0).contains(&ms), "period {ms} ms out of range");
            if ms < 10.0 {
                classes[0] += 1;
            } else if ms < 100.0 {
                classes[1] += 1;
            } else {
                classes[2] += 1;
            }
        }
        // Equiprobable classes: each should get roughly a third.
        for c in classes {
            assert!((60..=140).contains(&c), "class counts {classes:?}");
        }
    }

    #[test]
    fn period_divisor_shrinks_periods() {
        let mut r1 = SimRng::seeded(3);
        let mut r2 = SimRng::seeded(3);
        let base = WorkloadParams {
            n: 20,
            period_divisor: 1,
            base_utilization: 0.4,
        }
        .generate(&mut r1);
        let div3 = WorkloadParams {
            n: 20,
            period_divisor: 3,
            base_utilization: 0.4,
        }
        .generate(&mut r2);
        // Same RNG stream → same draws; periods divided by 3.
        let max_base = base.max_period();
        let max_div = div3.max_period();
        assert!(max_div.as_ns() * 3 <= max_base.as_ns() + 3_000);
        // Utilization stays at the base despite shorter periods.
        assert!((div3.utilization() - 0.4).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = WorkloadParams::default();
        let a = p.generate(&mut SimRng::seeded(7));
        let b = p.generate(&mut SimRng::seeded(7));
        assert_eq!(a, b);
    }

    #[test]
    fn wcets_never_zero() {
        let mut rng = SimRng::seeded(9);
        let ts = WorkloadParams {
            n: 50,
            period_divisor: 3,
            base_utilization: 0.01,
        }
        .generate(&mut rng);
        assert!(ts.tasks().iter().all(|t| !t.wcet.is_zero()));
    }
}
