//! Camcorder image stabilization — the paper's third motivating
//! domain (§1: "image stabilization in camcorders").
//!
//! Demonstrates the deadline-monotonic policy with *constrained*
//! deadlines (§5.3 names DM among the admissible fixed-priority
//! schedulers):
//!
//! - a 33 ms frame pipeline whose *motion estimation* must finish
//!   within 8 ms of frame start (the corrective lens command has to go
//!   out early in the frame time), even though its period is long;
//! - a 10 ms gyro sampler with a relaxed deadline;
//! - tape servo and OSD housekeeping tasks;
//! - a condition variable hands the motion vector from estimation to
//!   the lens-command task.
//!
//! Under plain RM the 10 ms gyro outranks the 33 ms estimator and the
//! 8 ms constrained deadline is missed; DM ranks by deadline and the
//! pipeline holds.
//!
//! ```sh
//! cargo run --example camcorder
//! ```

use emeralds::core::kernel::{Kernel, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::{KernelReport, SchedPolicy};
use emeralds::sim::{Duration, Time};

fn ms(v: u64) -> Duration {
    Duration::from_ms(v)
}

fn us(v: u64) -> Duration {
    Duration::from_us(v)
}

fn build(policy: SchedPolicy) -> (Kernel, emeralds::sim::ThreadId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy,
        ..KernelConfig::default()
    });
    let cam = b.add_process("camcorder");
    let lens = b.board_mut().add_actuator("lens");
    let frame_lock = b.add_mutex();
    let vector_ready = b.add_event(); // latching hand-off

    // Motion estimation: 33 ms frame period, but the result must be
    // ready 8 ms into the frame — a constrained deadline.
    let estimator = b.add_periodic_task_phased(
        cam,
        "motion-est",
        ms(33),
        ms(8), // deadline << period
        Duration::ZERO,
        Script::periodic(vec![
            Action::Compute(ms(5)),
            Action::AcquireSem(frame_lock),
            Action::Compute(us(200)), // publish the motion vector
            Action::ReleaseSem(frame_lock),
            Action::SignalEvent(vector_ready),
        ]),
    );
    // Lens command: waits for the vector, reads it under the lock
    // (the blocking wait right before the acquire carries the §6.2
    // parser hint), then drives the actuator.
    b.add_periodic_task_phased(
        cam,
        "lens-cmd",
        ms(33),
        ms(12),
        Duration::ZERO,
        Script::periodic(vec![
            Action::WaitEvent(vector_ready),
            Action::AcquireSem(frame_lock),
            Action::Compute(us(200)),
            Action::ReleaseSem(frame_lock),
            Action::Compute(us(300)),
            Action::DevWrite(lens, Operand::Const(1)),
        ]),
    );
    // Gyro sampling: short period, relaxed (implicit) deadline.
    b.add_periodic_task(cam, "gyro", ms(10), Script::compute_only(ms(4)));
    // Housekeeping.
    b.add_periodic_task(cam, "tape-servo", ms(50), Script::compute_only(ms(3)));
    b.add_periodic_task(cam, "osd", ms(100), Script::compute_only(ms(2)));
    (b.build(), estimator)
}

fn main() {
    println!("camcorder stabilization pipeline, 500 ms\n");
    for (name, policy) in [("RM", SchedPolicy::RmQueue), ("DM", SchedPolicy::DmQueue)] {
        let (mut k, estimator) = build(policy);
        k.run_until(Time::from_ms(500));
        let report = KernelReport::collect(&k);
        println!(
            "--- {name} (fixed priorities by {}) ---",
            if name == "RM" { "period" } else { "deadline" }
        );
        print!("{}", report.render());
        let est = k.tcb(estimator);
        println!(
            "motion-est: worst response {} against its 8 ms deadline, {} misses\n",
            est.max_response, est.deadline_misses
        );
        match name {
            "RM" => assert!(
                est.deadline_misses > 0,
                "RM should miss the constrained deadline (gyro outranks the estimator)"
            ),
            _ => assert_eq!(report.total_misses, 0, "DM must hold every deadline"),
        }
    }
    println!("deadline-monotonic priorities rescue the constrained 8 ms deadline");
}
