//! IPC, event, interrupt, and timer operations.

use emeralds_hal::AccessKind;
use emeralds_sim::{
    Duration, EventId, HotSpot, IrqLine, MboxId, OverheadKind, StateId, Subsystem, ThreadId,
    TraceEvent,
};

use crate::ipc::Message;
use crate::kernel::{IrqAction, Kernel, TimerEvent};
use crate::tcb::BlockReason;

impl Kernel {
    /// `mbox_send()`: copy into the kernel mailbox; block when full.
    pub(crate) fn sys_mbox_send(&mut self, tid: ThreadId, mb: MboxId, bytes: usize, tag: u32) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "mbox_send",
        });
        let msg = Message {
            bytes,
            tag,
            sender: tid,
        };
        // Direct hand-off to a blocked receiver: one copy in, one out.
        let receiver = {
            let mbx = &mut self.mboxes[mb.index()];
            if mbx.receivers.is_empty() {
                None
            } else {
                Some(mbx.receivers.remove(0))
            }
        };
        if let Some(r) = receiver {
            self.charge(OverheadKind::IpcCopy, self.cfg.cost.mbox_copy(bytes));
            self.charge(OverheadKind::IpcCopy, self.cfg.cost.mbox_copy(bytes));
            self.record(TraceEvent::MboxSend {
                tid,
                mbox: mb,
                bytes,
            });
            self.record(TraceEvent::MboxRecv {
                tid: r,
                mbox: mb,
                bytes,
            });
            self.mboxes[mb.index()].sent += 1;
            self.mboxes[mb.index()].received += 1;
            self.tcbs.get_mut(r).last_read = tag;
            self.tcbs.get_mut(tid).pc += 1;
            self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
            // The receiver's blocking call completes (hint-aware).
            self.complete_blocking_call(r);
            return;
        }
        if self.mboxes[mb.index()].has_space() {
            self.charge(OverheadKind::IpcCopy, self.cfg.cost.mbox_copy(bytes));
            self.mboxes[mb.index()].push(msg);
            self.record(TraceEvent::MboxSend {
                tid,
                mbox: mb,
                bytes,
            });
            self.tcbs.get_mut(tid).pc += 1;
            self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
        } else {
            // Full: park the sender with its message pending.
            self.pending_send[tid.index()] = Some(msg);
            let key = self.prio_key(tid);
            let keys: Vec<u128> = self.mboxes[mb.index()]
                .senders
                .iter()
                .map(|&w| self.prio_key(w))
                .collect();
            let pos = keys.iter().position(|&k| k > key).unwrap_or(keys.len());
            self.mboxes[mb.index()].senders.insert(pos, tid);
            self.tcbs.get_mut(tid).in_syscall = true;
            self.block_thread(tid, BlockReason::MboxSend(mb));
            self.reschedule();
        }
    }

    /// `mbox_recv()`: copy out of the mailbox; block when empty.
    pub(crate) fn sys_mbox_recv(&mut self, tid: ThreadId, mb: MboxId) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "mbox_recv",
        });
        if let Some(msg) = self.mboxes[mb.index()].pop() {
            self.charge(OverheadKind::IpcCopy, self.cfg.cost.mbox_copy(msg.bytes));
            self.record(TraceEvent::MboxRecv {
                tid,
                mbox: mb,
                bytes: msg.bytes,
            });
            self.tcbs.get_mut(tid).last_read = msg.tag;
            self.tcbs.get_mut(tid).pc += 1;
            self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
            // Space freed: admit one parked sender.
            let sender = {
                let mbx = &mut self.mboxes[mb.index()];
                if mbx.senders.is_empty() {
                    None
                } else {
                    Some(mbx.senders.remove(0))
                }
            };
            if let Some(snd) = sender {
                let pending = self.pending_send[snd.index()]
                    .take()
                    .expect("parked sender has a pending message");
                self.charge(
                    OverheadKind::IpcCopy,
                    self.cfg.cost.mbox_copy(pending.bytes),
                );
                self.mboxes[mb.index()].push(pending);
                self.record(TraceEvent::MboxSend {
                    tid: snd,
                    mbox: mb,
                    bytes: pending.bytes,
                });
                self.complete_blocking_call(snd);
            }
        } else {
            let key = self.prio_key(tid);
            let keys: Vec<u128> = self.mboxes[mb.index()]
                .receivers
                .iter()
                .map(|&w| self.prio_key(w))
                .collect();
            let pos = keys.iter().position(|&k| k > key).unwrap_or(keys.len());
            self.mboxes[mb.index()].receivers.insert(pos, tid);
            self.tcbs.get_mut(tid).in_syscall = true;
            self.block_thread(tid, BlockReason::MboxRecv(mb));
            self.reschedule();
        }
    }

    /// State-message write: a user-space copy into the shared buffer —
    /// *no* system call (§7, reconstructed).
    pub(crate) fn state_write(&mut self, tid: ThreadId, var: StateId, value: u32) {
        let v = &self.statemsgs[var.index()];
        let region = v.region;
        let size = v.size;
        let base = self.regions[region_index(&self.regions, region)].base;
        let proc = self.tcbs.get(tid).proc;
        // The MPU guards the shared buffer.
        if self.board.mpu.check(proc, base, AccessKind::Write).is_err() {
            self.record(TraceEvent::ProtectionFault { tid, addr: base });
            self.tcbs.get_mut(tid).pc += 1;
            return;
        }
        self.charge(OverheadKind::StateMsg, self.cfg.cost.statemsg_copy(size));
        let now = self.clock.now();
        self.statemsgs[var.index()].write(tid, value, now);
        let seq = self.statemsgs[var.index()].seq;
        self.record(TraceEvent::StateWrite { tid, var, seq });
        self.tcbs.get_mut(tid).pc += 1;
    }

    /// State-message read: a user-space copy out of the shared buffer.
    pub(crate) fn state_read(&mut self, tid: ThreadId, var: StateId) {
        let v = &self.statemsgs[var.index()];
        let region = v.region;
        let size = v.size;
        let base = self.regions[region_index(&self.regions, region)].base;
        let proc = self.tcbs.get(tid).proc;
        if self.board.mpu.check(proc, base, AccessKind::Read).is_err() {
            self.record(TraceEvent::ProtectionFault { tid, addr: base });
            self.tcbs.get_mut(tid).pc += 1;
            return;
        }
        self.charge(OverheadKind::StateMsg, self.cfg.cost.statemsg_copy(size));
        let now = self.clock.now();
        let (value, stamp) = self.statemsgs[var.index()].read_stamped();
        let seq = self.statemsgs[var.index()].seq;
        if seq > 0 {
            // Data age of the version acted on: read instant minus the
            // *original* writer's production stamp (end-to-end for a
            // networked replica). Unwritten variables have no age.
            let age = now.saturating_since(stamp);
            self.statemsgs[var.index()].record_age(age);
        }
        self.record(TraceEvent::StateRead { tid, var, seq });
        self.tcbs.get_mut(tid).last_read = value;
        self.tcbs.get_mut(tid).pc += 1;
    }

    /// Device-side state-message delivery (§7 networked state
    /// messages): the NIC DMAs an arriving state frame straight into
    /// the replica buffer — no mailbox, no interrupt, no syscall; the
    /// consumer polls the variable at its own rate. `stamp` is the
    /// original writer's production instant, so consumer-side data age
    /// stays end-to-end. Never fails: state semantics overwrite.
    pub fn external_state_write(&mut self, var: StateId, value: u32, stamp: emeralds_sim::Time) {
        let size = self.statemsgs[var.index()].size;
        self.charge(OverheadKind::StateMsg, self.cfg.cost.statemsg_copy(size));
        self.statemsgs[var.index()].write_external(value, stamp);
        let seq = self.statemsgs[var.index()].seq;
        self.record(TraceEvent::StateWrite {
            tid: crate::ipc::EXTERNAL_WRITER,
            var,
            seq,
        });
    }

    /// `event_signal()`: wake all waiters, or latch.
    pub(crate) fn sys_event_signal(&mut self, tid: ThreadId, e: EventId) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "event_signal",
        });
        self.record(TraceEvent::EventSignal { tid, event: e });
        self.events[e.index()].signals += 1;
        let waiters = std::mem::take(&mut self.events[e.index()].waiters);
        if waiters.is_empty() {
            self.events[e.index()].latched = true;
        }
        self.tcbs.get_mut(tid).pc += 1;
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
        for w in waiters {
            self.complete_blocking_call(w);
        }
    }

    /// `event_wait()`: consume a latched signal or block.
    pub(crate) fn sys_event_wait(&mut self, tid: ThreadId, e: EventId) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "event_wait",
        });
        if self.events[e.index()].latched {
            self.events[e.index()].latched = false;
            self.tcbs.get_mut(tid).pc += 1;
            self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
        } else {
            self.events[e.index()].waiters.push(tid);
            self.tcbs.get_mut(tid).in_syscall = true;
            self.block_thread(tid, BlockReason::Event(e));
            self.reschedule();
        }
    }

    /// `wait_irq()`: block until the line fires (consumes a pending
    /// latch immediately).
    pub(crate) fn sys_wait_irq(&mut self, tid: ThreadId, line: IrqLine) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall {
            tid,
            name: "wait_irq",
        });
        if self.board.intc.is_pending(line) {
            self.board.intc.ack(line);
            self.tcbs.get_mut(tid).pc += 1;
            self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_exit);
        } else {
            self.irq_waiters[line.index()].push(tid);
            self.tcbs.get_mut(tid).in_syscall = true;
            self.block_thread(tid, BlockReason::Irq(line));
            self.reschedule();
        }
    }

    /// `sleep_for()`: one-shot timer wakeup.
    pub(crate) fn sys_sleep(&mut self, tid: ThreadId, d: Duration) {
        self.charge(OverheadKind::Syscall, self.cfg.cost.syscall_entry);
        self.record(TraceEvent::Syscall { tid, name: "sleep" });
        let wake = self.clock.now() + d;
        self.timers.arm(wake, TimerEvent::Wake(tid));
        self.charge(OverheadKind::Timer, self.cfg.cost.timer_program);
        self.tcbs.get_mut(tid).in_syscall = true;
        self.block_thread(tid, BlockReason::Sleep);
        self.reschedule();
    }

    /// Device-side mailbox harvest (e.g. a NIC draining a transmit
    /// mailbox by DMA): pops one message without a syscall envelope
    /// and admits one parked sender if the pop made room.
    pub fn external_mbox_pop(&mut self, mb: MboxId) -> Option<Message> {
        let msg = self.mboxes[mb.index()].pop()?;
        let sender = {
            let mbx = &mut self.mboxes[mb.index()];
            if mbx.senders.is_empty() {
                None
            } else {
                Some(mbx.senders.remove(0))
            }
        };
        if let Some(snd) = sender {
            let pending = self.pending_send[snd.index()]
                .take()
                .expect("parked sender has a pending message");
            self.charge(
                OverheadKind::IpcCopy,
                self.cfg.cost.mbox_copy(pending.bytes),
            );
            self.mboxes[mb.index()].push(pending);
            self.complete_blocking_call(snd);
        }
        Some(msg)
    }

    /// Device-side mailbox delivery (e.g. a NIC posting a received
    /// frame): hands the message to a blocked receiver or queues it.
    /// Returns false (and drops the message) when the mailbox is full.
    pub fn external_mbox_push(&mut self, mb: MboxId, msg: Message) -> bool {
        let receiver = {
            let mbx = &mut self.mboxes[mb.index()];
            if mbx.receivers.is_empty() {
                None
            } else {
                Some(mbx.receivers.remove(0))
            }
        };
        if let Some(r) = receiver {
            self.charge(OverheadKind::IpcCopy, self.cfg.cost.mbox_copy(msg.bytes));
            self.record(TraceEvent::MboxRecv {
                tid: r,
                mbox: mb,
                bytes: msg.bytes,
            });
            self.mboxes[mb.index()].sent += 1;
            self.mboxes[mb.index()].received += 1;
            self.tcbs.get_mut(r).last_read = msg.tag;
            self.complete_blocking_call(r);
            true
        } else if self.mboxes[mb.index()].has_space() {
            self.charge(OverheadKind::IpcCopy, self.cfg.cost.mbox_copy(msg.bytes));
            self.mboxes[mb.index()].push(msg);
            true
        } else {
            false
        }
    }

    /// Externally raises an interrupt line (fieldbus frame arrival);
    /// serviced immediately, as the controller would preempt.
    pub fn raise_external_irq(&mut self, line: IrqLine) {
        let _span = HotSpot::enter(Subsystem::IrqBoard);
        self.board.intc.raise(line);
        self.record(TraceEvent::IrqRaised { line });
        self.service_pending_irqs();
    }

    /// First-level handling of one acknowledged interrupt line.
    pub(crate) fn handle_irq_line(&mut self, line: IrqLine) {
        // Wake user-level driver threads parked on the line.
        let waiters = std::mem::take(&mut self.irq_waiters[line.index()]);
        for w in waiters {
            self.complete_blocking_call(w);
        }
        match self.irq_actions[line.index()] {
            IrqAction::None => {}
            IrqAction::ReleaseSem(s) => {
                // V from interrupt context (counting semaphores).
                let waiter = self.sems[s.index()].pop_waiter();
                match waiter {
                    Some(w) => {
                        if self.sems[s.index()].is_mutex() {
                            self.sems[s.index()].holder = Some(w);
                            self.tcbs.get_mut(w).held_sems.push(s);
                        }
                        // Waiter blocked inside acquire: resume it.
                        let t = self.tcbs.get_mut(w);
                        if t.blocked_in_acquire {
                            t.blocked_in_acquire = false;
                            t.pc += 1;
                        } else {
                            t.granted_sem = Some(s);
                        }
                        self.counters.sem_handed_over += 1;
                        self.record(TraceEvent::SemAcquired { tid: w, sem: s });
                        self.make_ready(w);
                        self.reschedule();
                    }
                    None => {
                        if self.sems[s.index()].count < self.sems[s.index()].max_count {
                            self.sems[s.index()].count += 1;
                        }
                    }
                }
            }
            IrqAction::SignalEvent(e) => {
                self.events[e.index()].signals += 1;
                let waiters = std::mem::take(&mut self.events[e.index()].waiters);
                if waiters.is_empty() {
                    self.events[e.index()].latched = true;
                }
                for w in waiters {
                    self.complete_blocking_call(w);
                }
            }
        }
    }
}

fn region_index(regions: &[crate::ipc::SharedRegion], id: emeralds_sim::RegionId) -> usize {
    regions
        .iter()
        .position(|r| r.id == id)
        .expect("state message region registered")
}
