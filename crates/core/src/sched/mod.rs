//! The scheduler framework: EDF, RM (queue and heap), and CSD.
//!
//! Every implementation operates on *real* queue structures and
//! returns the virtual-time cost of the operations it actually
//! performed, priced by the [`CostModel`]. The Table 1 formulas are
//! therefore the *worst case* of what these methods charge, and the
//! CSD overheads of Table 3 emerge from the queue walks the code
//! really does.

use emeralds_hal::CostModel;
use emeralds_sim::{Duration, ThreadId};

use crate::tcb::{QueueAssign, TcbTable};

pub mod csd;
pub mod edf;
pub mod rm_heap;
pub mod rm_queue;

pub use csd::CsdSched;
pub use edf::EdfQueue;
pub use rm_heap::RmHeap;
pub use rm_queue::RmQueue;

/// Scheduler selection for a kernel instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Pure EDF: one unsorted queue of all tasks (§5.1).
    Edf,
    /// Pure RM: one priority-sorted queue of all tasks with a
    /// `highestp` pointer (§5.1).
    RmQueue,
    /// Deadline-monotonic: the same sorted queue, but priorities come
    /// from relative deadlines (§5.3 names DM as an admissible
    /// fixed-priority policy; optimal for constrained deadlines).
    DmQueue,
    /// Pure RM over a sorted heap of ready tasks (Table 1, column 3).
    RmHeap,
    /// CSD-x: `boundaries` split the RM-ordered task list into DP
    /// queues; the remainder is FP (§5.3–§5.6).
    Csd { boundaries: Vec<usize> },
}

impl SchedPolicy {
    /// The queue a task with RM index `rm_prio` is assigned to.
    pub fn queue_of(&self, rm_prio: u32) -> QueueAssign {
        match self {
            SchedPolicy::Edf => QueueAssign::Dp(0),
            SchedPolicy::RmQueue | SchedPolicy::DmQueue | SchedPolicy::RmHeap => QueueAssign::Fp,
            SchedPolicy::Csd { boundaries } => {
                for (j, &b) in boundaries.iter().enumerate() {
                    if (rm_prio as usize) < b {
                        return QueueAssign::Dp(j);
                    }
                }
                QueueAssign::Fp
            }
        }
    }
}

/// Unified scheduler interface (enum dispatch; no dyn in the kernel's
/// hot path, mirroring the original's direct calls).
#[derive(Debug)]
pub enum SchedulerImpl {
    Edf(EdfQueue),
    Rm(RmQueue),
    RmHeap(RmHeap),
    Csd(CsdSched),
}

impl SchedulerImpl {
    /// Builds the scheduler for `policy`.
    pub fn new(policy: &SchedPolicy) -> SchedulerImpl {
        match policy {
            SchedPolicy::Edf => SchedulerImpl::Edf(EdfQueue::new()),
            SchedPolicy::RmQueue | SchedPolicy::DmQueue => SchedulerImpl::Rm(RmQueue::new()),
            SchedPolicy::RmHeap => SchedulerImpl::RmHeap(RmHeap::new()),
            SchedPolicy::Csd { boundaries } => SchedulerImpl::Csd(CsdSched::new(boundaries.len())),
        }
    }

    /// Registers a task (at kernel build time).
    pub fn add_task(&mut self, tid: ThreadId, tcbs: &mut TcbTable) {
        match self {
            SchedulerImpl::Edf(q) => q.add(tid, tcbs),
            SchedulerImpl::Rm(q) => q.add(tid, tcbs),
            SchedulerImpl::RmHeap(h) => h.add(tid, tcbs),
            SchedulerImpl::Csd(c) => c.add(tid, tcbs),
        }
    }

    /// Accounts a Ready → Blocked transition (the TCB state is already
    /// updated by the kernel). Returns the charge for `t_b`.
    pub fn on_block(&mut self, tid: ThreadId, tcbs: &mut TcbTable, cost: &CostModel) -> Duration {
        match self {
            SchedulerImpl::Edf(q) => q.on_block(tid, cost),
            SchedulerImpl::Rm(q) => q.on_block(tid, tcbs, cost),
            SchedulerImpl::RmHeap(h) => h.on_block(tid, tcbs, cost),
            SchedulerImpl::Csd(c) => c.on_block(tid, tcbs, cost),
        }
    }

    /// Accounts a Blocked → Ready transition. Returns the charge for
    /// `t_u`.
    pub fn on_unblock(&mut self, tid: ThreadId, tcbs: &mut TcbTable, cost: &CostModel) -> Duration {
        match self {
            SchedulerImpl::Edf(q) => q.on_unblock(tid, cost),
            SchedulerImpl::Rm(q) => q.on_unblock(tid, tcbs, cost),
            SchedulerImpl::RmHeap(h) => h.on_unblock(tid, tcbs, cost),
            SchedulerImpl::Csd(c) => c.on_unblock(tid, tcbs, cost),
        }
    }

    /// Picks the next task to run. Returns the pick and the charge for
    /// `t_s`.
    pub fn select(&self, tcbs: &TcbTable, cost: &CostModel) -> (Option<ThreadId>, Duration) {
        match self {
            SchedulerImpl::Edf(q) => q.select(tcbs, cost),
            SchedulerImpl::Rm(q) => q.select(cost),
            SchedulerImpl::RmHeap(h) => h.select(cost),
            SchedulerImpl::Csd(c) => c.select(tcbs, cost),
        }
    }

    /// Raises `holder` to `donor`'s priority using the *standard*
    /// remove-and-reinsert walk (only meaningful for FP queues; EDF
    /// tasks inherit deadlines O(1) in the TCB). Returns the charge.
    pub fn pi_raise_standard(
        &mut self,
        holder: ThreadId,
        donor: ThreadId,
        tcbs: &mut TcbTable,
        cost: &CostModel,
    ) -> Duration {
        match self {
            SchedulerImpl::Rm(q) => q.pi_raise_standard(holder, donor, tcbs, cost),
            SchedulerImpl::Csd(c) => c.fp_mut().pi_raise_standard(holder, donor, tcbs, cost),
            // EDF / heap configurations: deadline inheritance, O(1).
            _ => cost.pi_dp_fixed,
        }
    }

    /// Returns `holder` to its base position with the *standard* walk.
    pub fn pi_restore_standard(
        &mut self,
        holder: ThreadId,
        tcbs: &mut TcbTable,
        cost: &CostModel,
    ) -> Duration {
        match self {
            SchedulerImpl::Rm(q) => q.pi_restore_standard(holder, tcbs, cost),
            SchedulerImpl::Csd(c) => c.fp_mut().pi_restore_standard(holder, tcbs, cost),
            _ => cost.pi_dp_fixed,
        }
    }

    /// EMERALDS O(1) placeholder swap (§6.2): exchanges the FP-queue
    /// slots of `a` and `b`. Returns the charge.
    pub fn pi_swap(
        &mut self,
        a: ThreadId,
        b: ThreadId,
        tcbs: &mut TcbTable,
        cost: &CostModel,
    ) -> Duration {
        match self {
            SchedulerImpl::Rm(q) => q.pi_swap(a, b, tcbs, cost),
            SchedulerImpl::Csd(c) => c.fp_mut().pi_swap(a, b, tcbs, cost),
            _ => cost.pi_dp_fixed,
        }
    }

    /// True if both tasks live in an FP queue (the placeholder trick
    /// applies only there).
    pub fn both_fp(&self, a: ThreadId, b: ThreadId, tcbs: &TcbTable) -> bool {
        tcbs.get(a).queue == QueueAssign::Fp && tcbs.get(b).queue == QueueAssign::Fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_queue_assignment() {
        let p = SchedPolicy::Csd {
            boundaries: vec![3, 6],
        };
        assert_eq!(p.queue_of(0), QueueAssign::Dp(0));
        assert_eq!(p.queue_of(2), QueueAssign::Dp(0));
        assert_eq!(p.queue_of(3), QueueAssign::Dp(1));
        assert_eq!(p.queue_of(5), QueueAssign::Dp(1));
        assert_eq!(p.queue_of(6), QueueAssign::Fp);
        assert_eq!(SchedPolicy::Edf.queue_of(9), QueueAssign::Dp(0));
        assert_eq!(SchedPolicy::RmQueue.queue_of(0), QueueAssign::Fp);
    }
}
