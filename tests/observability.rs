//! Observability-layer tests: literal event sequences around a
//! contended `acquire_sem()` under both §6 schemes, a golden
//! [`KernelMetrics`] snapshot, deadline-miss forensics, bounded
//! ring-trace recording, and JSONL export.

use emeralds::core::kernel::{Kernel, KernelBuilder, KernelConfig, ServiceCounters};
use emeralds::core::script::{Action, Script};
use emeralds::core::{SchedPolicy, SemScheme};
use emeralds::sim::{Duration, SemId, ThreadId, Time, TraceEvent};

/// The Figure 6/8 scenario: a low-priority task (T1) takes the lock,
/// then the high-priority task (T0) is released mid-critical-section
/// and contends for it. T0's script acquires immediately after its
/// release point, so the §6.2 hint fires under the EMERALDS scheme.
fn contended_scenario(scheme: SemScheme) -> Kernel {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        sem_scheme: scheme,
        ..KernelConfig::default()
    });
    let p = b.add_process("app");
    let s = b.add_mutex();
    b.add_periodic_task_phased(
        p,
        "hi",
        Duration::from_ms(20),
        Duration::from_ms(20),
        Duration::from_ms(1),
        Script::periodic(vec![
            Action::AcquireSem(s),
            Action::Compute(Duration::from_us(200)),
            Action::ReleaseSem(s),
            Action::Compute(Duration::from_us(50)),
        ]),
    );
    b.add_periodic_task(
        p,
        "lo",
        Duration::from_ms(40),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(100)),
            Action::AcquireSem(s),
            Action::Compute(Duration::from_us(3000)),
            Action::ReleaseSem(s),
            Action::Compute(Duration::from_us(100)),
        ]),
    );
    let mut k = b.build();
    k.run_until(Time::from_ms(6));
    k
}

/// Projects the trace onto the events the §6 argument is made of:
/// context switches, semaphore traffic, inheritance, and block state.
fn sem_relevant(k: &Kernel) -> Vec<TraceEvent> {
    k.trace()
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                TraceEvent::ContextSwitch { .. }
                    | TraceEvent::Blocked { .. }
                    | TraceEvent::Unblocked { .. }
                    | TraceEvent::SemAcquired { .. }
                    | TraceEvent::SemBlocked { .. }
                    | TraceEvent::SemReleased { .. }
                    | TraceEvent::PriorityInherit { .. }
                    | TraceEvent::PriorityRestore { .. }
                    | TraceEvent::EarlyInherit { .. }
                    | TraceEvent::PreLockAdmit { .. }
                    | TraceEvent::PreLockBlock { .. }
                    | TraceEvent::Syscall { .. }
            )
        })
        .map(|(_, e)| e.clone())
        .collect()
}

const HI: ThreadId = ThreadId(0);
const LO: ThreadId = ThreadId(1);
const S: SemId = SemId(0);

fn sw(from: Option<ThreadId>, to: Option<ThreadId>) -> TraceEvent {
    TraceEvent::ContextSwitch { from, to }
}

/// §6.1: the contended acquire blocks inside `acquire_sem()`,
/// inheritance happens there, and the acquire/release pair costs two
/// extra context switches (hi → lo and back).
#[test]
fn contended_acquire_event_sequence_standard_scheme() {
    let k = contended_scenario(SemScheme::Standard);
    let expected = vec![
        TraceEvent::Unblocked { tid: LO },
        sw(None, Some(LO)),
        TraceEvent::Syscall {
            tid: LO,
            name: "acquire_sem",
        },
        TraceEvent::SemAcquired { tid: LO, sem: S },
        // T0 released mid-critical-section: it preempts, then blocks.
        TraceEvent::Unblocked { tid: HI },
        sw(Some(LO), Some(HI)),
        TraceEvent::Syscall {
            tid: HI,
            name: "acquire_sem",
        },
        TraceEvent::PriorityInherit {
            holder: LO,
            donor: HI,
        },
        TraceEvent::Blocked { tid: HI },
        TraceEvent::SemBlocked {
            tid: HI,
            sem: S,
            holder: LO,
        },
        sw(Some(HI), Some(LO)), // extra switch #1
        TraceEvent::Syscall {
            tid: LO,
            name: "release_sem",
        },
        TraceEvent::PriorityRestore { holder: LO },
        TraceEvent::SemReleased { tid: LO, sem: S },
        TraceEvent::SemAcquired { tid: HI, sem: S }, // hand-over
        TraceEvent::Unblocked { tid: HI },
        sw(Some(LO), Some(HI)), // extra switch #2
        TraceEvent::Syscall {
            tid: HI,
            name: "release_sem",
        },
        TraceEvent::SemReleased { tid: HI, sem: S },
        TraceEvent::Blocked { tid: HI },
        sw(Some(HI), Some(LO)),
        TraceEvent::Blocked { tid: LO },
        sw(Some(LO), None),
    ];
    assert_eq!(sem_relevant(&k), expected);
}

/// §6.2–6.3: the hint at T0's release point performs inheritance
/// early and keeps T0 blocked; the lock is handed over at release, so
/// neither extra context switch happens (and T1's own first acquire
/// goes through the §6.3.1 pre-lock queue).
#[test]
fn contended_acquire_event_sequence_emeralds_scheme() {
    let k = contended_scenario(SemScheme::Emeralds);
    let expected = vec![
        TraceEvent::PreLockAdmit { tid: LO, sem: S },
        TraceEvent::Unblocked { tid: LO },
        sw(None, Some(LO)),
        TraceEvent::Syscall {
            tid: LO,
            name: "acquire_sem",
        },
        TraceEvent::SemAcquired { tid: LO, sem: S },
        // T0's release point: inherit early, stay blocked — no switch.
        TraceEvent::PriorityInherit {
            holder: LO,
            donor: HI,
        },
        TraceEvent::EarlyInherit {
            waiter: HI,
            holder: LO,
            sem: S,
        },
        TraceEvent::Syscall {
            tid: LO,
            name: "release_sem",
        },
        TraceEvent::PriorityRestore { holder: LO },
        TraceEvent::SemReleased { tid: LO, sem: S },
        TraceEvent::SemAcquired { tid: HI, sem: S }, // hand-over
        TraceEvent::Unblocked { tid: HI },
        sw(Some(LO), Some(HI)),
        TraceEvent::Syscall {
            tid: HI,
            name: "acquire_sem",
        }, // early grant
        TraceEvent::Syscall {
            tid: HI,
            name: "release_sem",
        },
        TraceEvent::SemReleased { tid: HI, sem: S },
        TraceEvent::Blocked { tid: HI },
        sw(Some(HI), Some(LO)),
        TraceEvent::Blocked { tid: LO },
        sw(Some(LO), None),
    ];
    assert_eq!(sem_relevant(&k), expected);
    // The Figure 8 claim: two context switches eliminated.
    let std = contended_scenario(SemScheme::Standard);
    assert_eq!(
        k.trace().context_switch_count() + 2,
        std.trace().context_switch_count()
    );
}

/// Golden snapshot of the service counters and per-task metrics for
/// the deterministic contention scenario.
#[test]
fn golden_kernel_metrics_snapshot() {
    let k = contended_scenario(SemScheme::Standard);
    let m = k.metrics();
    assert_eq!(
        m.counters,
        ServiceCounters {
            sys_acquire_sem: 2,
            sys_release_sem: 2,
            sem_acquired: 2,
            sem_contended: 1,
            sem_handed_over: 1,
            sem_released: 2,
            priority_inherits: 1,
            priority_restores: 1,
            ..ServiceCounters::default()
        }
    );
    assert_eq!(m.counters.sem_uncontended(), 1);
    assert_eq!(m.counters.syscall_total(), 4);
    assert_eq!(m.context_switches, 6);
    assert_eq!(m.deadline_misses, 0);
    assert_eq!(m.now, Time::from_ms(6));
    assert_eq!(m.trace_dropped, 0);
    assert_eq!(m.tasks.len(), 2);
    let hi = &m.tasks[0];
    assert_eq!(
        (&*hi.name, hi.jobs_completed, hi.deadline_misses),
        ("hi", 1, 0)
    );
    // T0 preempts as soon as it is released, so its dispatch latency
    // is just the release/switch overhead; the critical-section wait
    // shows up in its response time instead.
    assert!(
        hi.max_response > Duration::from_ms(2),
        "resp {}",
        hi.max_response
    );
    assert!(
        hi.max_dispatch_latency < Duration::from_us(20),
        "dispatch {}",
        hi.max_dispatch_latency
    );
    assert!(hi.mean_response <= hi.max_response);
    let lo = &m.tasks[1];
    assert_eq!((&*lo.name, lo.jobs_completed), ("lo", 1));
    assert!(lo.max_dispatch_latency < Duration::from_us(20));
    // The EMERALDS run differs exactly in the sem-path counters.
    let e = contended_scenario(SemScheme::Emeralds).metrics();
    assert_eq!(e.counters.early_inherits, 1);
    assert_eq!(e.counters.prelock_admits, 1);
    assert_eq!(e.counters.sem_contended, 0);
    assert_eq!(e.context_switches, 4);
    // Both renderings exist and carry the headline numbers.
    assert!(m.render().contains("ctxsw 6"));
    assert!(m.to_json().contains("\"sem_handed_over\": 1"));
}

/// An over-utilized EDF workload misses; the kernel captures a
/// forensic report with the last-K window and the ready state, and a
/// test can print an actionable diagnosis.
#[test]
fn deadline_miss_captures_forensic_window() {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Edf,
        miss_window: 16,
        ..KernelConfig::default()
    });
    let p = b.add_process("app");
    for (i, (period, wcet)) in [(4u64, 3_000u64), (6, 3_000)].into_iter().enumerate() {
        b.add_periodic_task(
            p,
            format!("t{i}"),
            Duration::from_ms(period),
            Script::compute_only(Duration::from_us(wcet)),
        );
    }
    let mut k = b.build();
    assert!(k.run_until_miss(Time::from_ms(100)), "U = 1.25 must miss");
    let reports = k.miss_reports();
    assert_eq!(reports.len(), 1, "run stops at the first miss");
    let r = &reports[0];
    assert_eq!(r.window.len().min(16), r.window.len());
    assert!(!r.window.is_empty());
    // The window ends with the miss itself.
    assert!(matches!(
        r.window.last().unwrap().1,
        TraceEvent::DeadlineMiss { .. }
    ));
    assert_eq!(r.tasks.len(), 2);
    // Detection happens at the deadline/release tick; kernel-overhead
    // charges can shift the two apart by a few microseconds.
    let skew = if r.at >= r.deadline {
        r.at.saturating_since(r.deadline)
    } else {
        r.deadline.saturating_since(r.at)
    };
    assert!(skew < Duration::from_us(50), "skew {skew}");
    let text = r.render();
    println!("{text}");
    assert!(text.contains("DEADLINE MISS"));
    assert!(text.contains("task states:"));
    assert!(text.contains(&format!("last {} events:", r.window.len())));
    // Forensics survive a bounded ring trace too.
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Edf,
        miss_window: 16,
        trace_ring: Some(32),
        ..KernelConfig::default()
    });
    let p = b.add_process("app");
    b.add_periodic_task(
        p,
        "t0",
        Duration::from_ms(4),
        Script::compute_only(Duration::from_us(3_000)),
    );
    b.add_periodic_task(
        p,
        "t1",
        Duration::from_ms(6),
        Script::compute_only(Duration::from_us(3_000)),
    );
    let mut k2 = b.build();
    assert!(k2.run_until_miss(Time::from_ms(100)));
    let r2 = &k2.miss_reports()[0];
    assert!(!r2.window.is_empty());
    assert!(matches!(
        r2.window.last().unwrap().1,
        TraceEvent::DeadlineMiss { .. }
    ));
}

/// A ring-bounded trace stores at most N events while every counter
/// and metric stays exact.
#[test]
fn ring_trace_bounds_storage_with_exact_counters() {
    let full = contended_scenario(SemScheme::Standard);
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        sem_scheme: SemScheme::Standard,
        trace_ring: Some(8),
        ..KernelConfig::default()
    });
    let p = b.add_process("app");
    let s = b.add_mutex();
    b.add_periodic_task_phased(
        p,
        "hi",
        Duration::from_ms(20),
        Duration::from_ms(20),
        Duration::from_ms(1),
        Script::periodic(vec![
            Action::AcquireSem(s),
            Action::Compute(Duration::from_us(200)),
            Action::ReleaseSem(s),
            Action::Compute(Duration::from_us(50)),
        ]),
    );
    b.add_periodic_task(
        p,
        "lo",
        Duration::from_ms(40),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(100)),
            Action::AcquireSem(s),
            Action::Compute(Duration::from_us(3000)),
            Action::ReleaseSem(s),
            Action::Compute(Duration::from_us(100)),
        ]),
    );
    let mut k = b.build();
    k.run_until(Time::from_ms(6));
    assert_eq!(k.trace().len(), 8);
    assert!(k.trace().dropped() > 0);
    // Counters and metrics agree with the unbounded run exactly.
    assert_eq!(k.counters(), full.counters());
    assert_eq!(
        k.trace().context_switch_count(),
        full.trace().context_switch_count()
    );
    let (m_ring, m_full) = (k.metrics(), full.metrics());
    assert_eq!(m_ring.counters, m_full.counters);
    assert_eq!(m_ring.tasks, m_full.tasks);
    // The stored tail is the chronological suffix of the full trace.
    let tail: Vec<_> = full.trace().recent(8);
    let ring: Vec<_> = k.trace().iter().cloned().collect();
    assert_eq!(ring, tail);
}

/// JSONL export: one line per stored event, machine-parseable fields.
#[test]
fn trace_exports_jsonl() {
    let k = contended_scenario(SemScheme::Emeralds);
    let out = k.trace().to_jsonl();
    assert_eq!(out.lines().count(), k.trace().len());
    for line in out.lines() {
        assert!(line.starts_with("{\"t_ns\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
        assert!(line.contains("\"kind\":\""), "bad line: {line}");
    }
    assert!(out.contains("\"kind\":\"early_inherit\",\"waiter\":0,\"holder\":1,\"sem\":0"));
    assert!(out.contains("\"kind\":\"syscall\",\"tid\":1,\"name\":\"acquire_sem\""));
    let mut buf = Vec::new();
    k.trace().write_jsonl(&mut buf).unwrap();
    assert_eq!(String::from_utf8(buf).unwrap(), out);
}
