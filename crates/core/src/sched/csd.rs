//! The CSD (combined static/dynamic) scheduler (§5.3–§5.6).
//!
//! CSD maintains a prioritized list of queues: one or more
//! dynamic-priority (EDF) queues holding the short-period tasks,
//! followed by the fixed-priority (RM) queue. "A counter keeps track
//! of the number of ready tasks in the DP queue. When the scheduler is
//! invoked, if the counter is non-zero, the DP queue is parsed to pick
//! the earliest-deadline ready task. Otherwise, the DP queue is
//! skipped completely and the scheduler picks the highest-priority
//! ready task from the FP queue." Parsing the list of queues costs
//! 0.55 µs per queue (§5.7).

use emeralds_hal::CostModel;
use emeralds_sim::{Duration, ThreadId};

use crate::sched::edf::EdfQueue;
use crate::sched::rm_queue::RmQueue;
use crate::tcb::{QueueAssign, TcbTable};

/// The CSD scheduler: DP queues in priority order, then the FP queue.
#[derive(Debug)]
pub struct CsdSched {
    dps: Vec<EdfQueue>,
    fp: RmQueue,
}

impl CsdSched {
    /// Creates a CSD scheduler with `num_dp` dynamic queues.
    ///
    /// # Panics
    ///
    /// Panics if `num_dp` is zero (that would be plain RM).
    pub fn new(num_dp: usize) -> Self {
        assert!(num_dp >= 1, "CSD needs at least one DP queue");
        CsdSched {
            dps: (0..num_dp).map(|_| EdfQueue::new()).collect(),
            fp: RmQueue::new(),
        }
    }

    /// Mutable access to the FP queue (for the PI operations).
    pub fn fp_mut(&mut self) -> &mut RmQueue {
        &mut self.fp
    }

    /// Number of queues (the `x` of CSD-x).
    pub fn num_queues(&self) -> usize {
        self.dps.len() + 1
    }

    /// Length of DP queue `j`.
    pub fn dp_len(&self, j: usize) -> usize {
        self.dps[j].len()
    }

    /// Length of the FP queue.
    pub fn fp_len(&self) -> usize {
        self.fp.len()
    }

    /// Registers a task according to its TCB queue assignment.
    pub fn add(&mut self, tid: ThreadId, tcbs: &mut TcbTable) {
        match tcbs.get(tid).queue {
            QueueAssign::Dp(j) => {
                assert!(j < self.dps.len(), "task assigned to missing DP queue {j}");
                self.dps[j].add(tid, tcbs);
            }
            QueueAssign::Fp => self.fp.add(tid, tcbs),
        }
    }

    /// Routes a block to the owning queue.
    pub fn on_block(&mut self, tid: ThreadId, tcbs: &mut TcbTable, cost: &CostModel) -> Duration {
        match tcbs.get(tid).queue {
            QueueAssign::Dp(j) => self.dps[j].on_block(tid, cost),
            QueueAssign::Fp => self.fp.on_block(tid, tcbs, cost),
        }
    }

    /// Routes an unblock to the owning queue.
    pub fn on_unblock(&mut self, tid: ThreadId, tcbs: &mut TcbTable, cost: &CostModel) -> Duration {
        match tcbs.get(tid).queue {
            QueueAssign::Dp(j) => self.dps[j].on_unblock(tid, cost),
            QueueAssign::Fp => self.fp.on_unblock(tid, tcbs, cost),
        }
    }

    /// Parses the queue list: skips ready-empty DP queues at the
    /// per-queue parse cost, EDF-selects within the first DP queue
    /// that has a ready task, or falls through to the FP `highestp`.
    pub fn select(&self, tcbs: &TcbTable, cost: &CostModel) -> (Option<ThreadId>, Duration) {
        let mut charge = Duration::ZERO;
        for q in &self.dps {
            charge += cost.csd_queue_parse;
            if q.has_ready() {
                let (pick, c) = q.select(tcbs, cost);
                debug_assert!(pick.is_some(), "ready counter out of sync");
                return (pick, charge + c);
            }
        }
        charge += cost.csd_queue_parse;
        let (pick, c) = self.fp.select(cost);
        (pick, charge + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;
    use crate::tcb::{BlockReason, Tcb, ThreadState, Timing};
    use emeralds_sim::{ProcId, Time};

    /// Builds a CSD-3: T0,T1 in DP1; T2,T3 in DP2; T4,T5 in FP.
    fn setup() -> (TcbTable, CsdSched) {
        let mut tcbs = TcbTable::new();
        for i in 0..6u32 {
            let queue = match i {
                0 | 1 => QueueAssign::Dp(0),
                2 | 3 => QueueAssign::Dp(1),
                _ => QueueAssign::Fp,
            };
            let mut tcb = Tcb::new(
                ThreadId(i),
                ProcId(0),
                format!("t{i}"),
                Timing::Periodic {
                    period: Duration::from_ms(5 + i as u64 * 10),
                    deadline: Duration::from_ms(5 + i as u64 * 10),
                    phase: Duration::ZERO,
                },
                Script::compute_only(Duration::from_ms(1)),
                i,
                queue,
            );
            tcb.state = ThreadState::Ready;
            tcb.abs_deadline = Time::from_ms(100 + i as u64);
            tcbs.insert(tcb);
        }
        let mut c = CsdSched::new(2);
        for i in 0..6 {
            c.add(ThreadId(i), &mut tcbs);
        }
        (tcbs, c)
    }

    fn block(c: &mut CsdSched, tcbs: &mut TcbTable, id: u32, cost: &CostModel) {
        tcbs.get_mut(ThreadId(id)).state = ThreadState::Blocked(BlockReason::EndOfJob);
        c.on_block(ThreadId(id), tcbs, cost);
    }

    #[test]
    fn dp1_has_absolute_priority() {
        let (tcbs, c) = setup();
        let cost = CostModel::mc68040_25mhz();
        let (pick, charge) = c.select(&tcbs, &cost);
        assert_eq!(pick, Some(ThreadId(0))); // earliest deadline in DP1
                                             // One queue parsed + EDF walk of 2.
        assert_eq!(
            charge,
            cost.csd_queue_parse + cost.edf_select_fixed + cost.edf_select_per_node * 2
        );
    }

    #[test]
    fn empty_dp1_skips_to_dp2_cheaply() {
        let (mut tcbs, mut c) = setup();
        let cost = CostModel::mc68040_25mhz();
        block(&mut c, &mut tcbs, 0, &cost);
        block(&mut c, &mut tcbs, 1, &cost);
        let (pick, charge) = c.select(&tcbs, &cost);
        assert_eq!(pick, Some(ThreadId(2)));
        assert_eq!(
            charge,
            cost.csd_queue_parse * 2 + cost.edf_select_fixed + cost.edf_select_per_node * 2
        );
    }

    #[test]
    fn all_dp_blocked_falls_to_fp_highestp() {
        let (mut tcbs, mut c) = setup();
        let cost = CostModel::mc68040_25mhz();
        for i in 0..4 {
            block(&mut c, &mut tcbs, i, &cost);
        }
        let (pick, charge) = c.select(&tcbs, &cost);
        assert_eq!(pick, Some(ThreadId(4)));
        // Three queue headers parsed + O(1) FP select: the §5.7
        // "additional x · 0.55 µs".
        assert_eq!(charge, cost.csd_queue_parse * 3 + cost.rmq_select);
    }

    #[test]
    fn nothing_ready_selects_none() {
        let (mut tcbs, mut c) = setup();
        let cost = CostModel::mc68040_25mhz();
        for i in 0..6 {
            block(&mut c, &mut tcbs, i, &cost);
        }
        assert_eq!(c.select(&tcbs, &cost).0, None);
    }

    #[test]
    fn unblock_routes_to_owning_queue() {
        let (mut tcbs, mut c) = setup();
        let cost = CostModel::mc68040_25mhz();
        for i in 0..6 {
            block(&mut c, &mut tcbs, i, &cost);
        }
        tcbs.get_mut(ThreadId(3)).state = ThreadState::Ready;
        let charge = c.on_unblock(ThreadId(3), &mut tcbs, &cost);
        assert_eq!(charge, cost.edf_unblock);
        assert_eq!(c.select(&tcbs, &cost).0, Some(ThreadId(3)));
        tcbs.get_mut(ThreadId(5)).state = ThreadState::Ready;
        let charge = c.on_unblock(ThreadId(5), &mut tcbs, &cost);
        assert_eq!(charge, cost.rmq_unblock);
        // DP still wins.
        assert_eq!(c.select(&tcbs, &cost).0, Some(ThreadId(3)));
    }

    #[test]
    fn queue_lengths_reported() {
        let (_tcbs, c) = setup();
        assert_eq!(c.num_queues(), 3);
        assert_eq!(c.dp_len(0), 2);
        assert_eq!(c.dp_len(1), 2);
        assert_eq!(c.fp_len(), 2);
    }
}
