//! Property-based invariants over the public API.
//!
//! proptest drives randomized workloads and interleavings through the
//! kernel and the state-message protocol, checking the invariants the
//! paper's design depends on.

use emeralds::core::ipc::statemsg::protocol::{Buffer, ReadResult, Reader, Writer};
use emeralds::core::ipc::required_depth;
use emeralds::core::kernel::{KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Script};
use emeralds::core::{SchedPolicy, SemScheme};
use emeralds::sim::{Duration, Time};
use proptest::prelude::*;

/// Strategy: a small periodic workload with optional lock use.
fn workload_strategy() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    // (period ms, wcet us, uses_lock); utilization kept moderate.
    prop::collection::vec(
        (5u64..200, 100u64..2_000, any::<bool>()),
        2..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ledger always balances: app + idle + overhead = elapsed
    /// virtual time, for any workload, policy, and scheme.
    #[test]
    fn accounting_always_balances(
        spec in workload_strategy(),
        csd in any::<bool>(),
        emeralds_scheme in any::<bool>(),
    ) {
        let policy = if csd {
            SchedPolicy::Csd { boundaries: vec![spec.len() / 2] }
        } else {
            SchedPolicy::Edf
        };
        let scheme = if emeralds_scheme { SemScheme::Emeralds } else { SemScheme::Standard };
        let mut b = KernelBuilder::new(KernelConfig {
            policy,
            sem_scheme: scheme,
            record_trace: false,
            ..KernelConfig::default()
        });
        let p = b.add_process("w");
        let lock = b.add_mutex();
        for (i, &(p_ms, c_us, uses_lock)) in spec.iter().enumerate() {
            let wcet = Duration::from_us(c_us.min(p_ms * 500)); // stay under 50% per task
            let script = if uses_lock {
                Script::periodic(vec![
                    Action::AcquireSem(lock),
                    Action::Compute(wcet),
                    Action::ReleaseSem(lock),
                ])
            } else {
                Script::compute_only(wcet)
            };
            b.add_periodic_task(p, format!("t{i}"), Duration::from_ms(p_ms), script);
        }
        let mut k = b.build();
        k.run_until(Time::from_ms(300));
        prop_assert_eq!(k.accounting().grand_total().as_ns(), k.now().as_ns());
    }

    /// Trace timestamps never run backwards.
    #[test]
    fn trace_is_monotone(spec in workload_strategy()) {
        let mut b = KernelBuilder::new(KernelConfig::default());
        let p = b.add_process("w");
        for (i, &(p_ms, c_us, _)) in spec.iter().enumerate() {
            let wcet = Duration::from_us(c_us.min(p_ms * 400));
            b.add_periodic_task(p, format!("t{i}"), Duration::from_ms(p_ms),
                Script::compute_only(wcet));
        }
        let mut k = b.build();
        k.run_until(Time::from_ms(150));
        let mut last = Time::ZERO;
        for &(t, _) in k.trace().events() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Semaphore-scheme equivalence on random lock-sharing workloads:
    /// identical jobs completed and identical per-task CPU time.
    #[test]
    fn schemes_equivalent_on_random_workloads(spec in workload_strategy()) {
        let run = |scheme: SemScheme| {
            let mut b = KernelBuilder::new(KernelConfig {
                policy: SchedPolicy::RmQueue,
                sem_scheme: scheme,
                record_trace: false,
                ..KernelConfig::default()
            });
            let p = b.add_process("w");
            let lock = b.add_mutex();
            for (i, &(p_ms, c_us, uses_lock)) in spec.iter().enumerate() {
                let wcet = Duration::from_us(c_us.min(p_ms * 400));
                let script = if uses_lock {
                    Script::periodic(vec![
                        Action::Compute(Duration::from_us(50)),
                        Action::AcquireSem(lock),
                        Action::Compute(wcet),
                        Action::ReleaseSem(lock),
                    ])
                } else {
                    Script::compute_only(wcet)
                };
                b.add_periodic_task(p, format!("t{i}"), Duration::from_ms(p_ms), script);
            }
            let mut k = b.build();
            k.run_until(Time::from_ms(400));
            (0..spec.len() as u32)
                .map(|i| {
                    let t = k.tcb(emeralds::sim::ThreadId(i));
                    (t.jobs_completed, t.deadline_misses, t.cpu_time)
                })
                .collect::<Vec<_>>()
        };
        let a = run(SemScheme::Standard);
        let b = run(SemScheme::Emeralds);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert_eq!(x.0, y.0, "jobs of task {}", i);
            prop_assert_eq!(x.1, y.1, "misses of task {}", i);
            // A job in flight at the horizon may have progressed
            // slightly differently (the schemes place overhead at
            // different instants); completed work is identical.
            let (lo, hi) = if x.2 < y.2 { (x.2, y.2) } else { (y.2, x.2) };
            prop_assert!(
                (hi - lo) < Duration::from_us(100),
                "cpu time of task {} diverged: {} vs {}", i, x.2, y.2
            );
        }
    }

    /// State-message consistency: with a buffer sized by
    /// `required_depth`, a reader interleaved arbitrarily with writers
    /// never sees a torn value and never needs a retry.
    #[test]
    fn state_message_reads_are_consistent_with_sized_buffers(
        size in 1usize..32,
        stall_steps in 0usize..64,
        writes_during_read in 0usize..4,
    ) {
        // Model: writer "period" = size+1 steps per version; the
        // reader may stall `stall_steps`, during which
        // `writes_during_read` complete. Size the buffer for the worst
        // case modelled here.
        let depth = required_depth(
            Duration::from_us(10),
            Duration::from_us(10 * writes_during_read.max(1) as u64),
        )
        .max(writes_during_read + 2);
        let mut buf = Buffer::new(depth, size);
        // Publish version 1.
        let mut w = Writer::start(&buf);
        while !w.step(&mut buf) {}
        // Reader copies half, stalls while writers run, then resumes.
        let mut r = Reader::start(&buf);
        for _ in 0..size / 2 {
            prop_assert!(r.step(&buf).is_none());
        }
        let _ = stall_steps;
        for _ in 0..writes_during_read {
            let mut w = Writer::start(&buf);
            while !w.step(&mut buf) {}
        }
        let result = loop {
            if let Some(res) = r.step(&buf) {
                break res;
            }
        };
        prop_assert_eq!(result, ReadResult::Consistent(1));
    }

    /// With a deliberately undersized (1-deep) buffer and the
    /// sequence check enabled, torn data is always *detected* (retry),
    /// never silently returned.
    #[test]
    fn undersized_buffers_detect_overwrites(size in 2usize..32) {
        let mut buf = Buffer::new(1, size);
        let mut w = Writer::start(&buf);
        while !w.step(&mut buf) {}
        let mut r = Reader::start(&buf);
        for _ in 0..size / 2 {
            let _ = r.step(&buf);
        }
        let mut w2 = Writer::start(&buf);
        while !w2.step(&mut buf) {}
        for _ in 0..size {
            if r.step(&buf).is_some() {
                break;
            }
        }
        // The honest check reports Retry; it must never claim
        // consistency with mixed versions present.
        let checked = r.finish(&buf, true);
        prop_assert_eq!(checked, ReadResult::Retry);
    }
}
