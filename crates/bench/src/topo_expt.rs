//! Experiment TOPO — bridged multi-segment topologies under
//! hierarchical conservative lookahead.
//!
//! Not a paper figure: the paper's distributed configuration (§2) is
//! one fieldbus of 5–10 nodes. City-scale EMERALDS-class systems —
//! vehicle platoons, plant cells, building backbones — are *many*
//! buses joined by store-and-forward gateways, and this experiment
//! measures the [`emeralds_fieldbus::Topology`] executive at that
//! scale: 2–8 CAN segments carrying 128–1024 application nodes total,
//! with ~25% of each segment's traffic crossing a gateway to the
//! neighboring segment.
//!
//! Everything reported is *simulated* — no wall-clock fields — so the
//! committed `BENCH_topology.json` reproduces bit-for-bit on any
//! host. Two properties are gated per row:
//!
//! - **Cross-segment frame conservation**: summed over segments,
//!   `sent == delivered + dropped + in_flight + gateway_buffered` —
//!   the gateway buffers are the only carry term, and unroutable or
//!   overflowing captures are charged (`frames_lost_gateway`), never
//!   leaked.
//! - **Outer-worker invisibility**: each row is run at 1, 4, and
//!   `available_parallelism` outer workers and every statistic —
//!   per-segment bus stats, gateway stats, rolled-up kernel metrics,
//!   barrier counts — must be bit-for-bit identical (`deterministic`
//!   column).

use emeralds_core::kernel::{KernelBuilder, KernelConfig};
use emeralds_core::script::{Action, Script};
use emeralds_core::{Kernel, SchedPolicy};
use emeralds_fieldbus::{wide_tag, GatewayConfig, GatewayId, Topology};
use emeralds_sim::{Duration, IrqLine, MboxId, NodeId, SimRng, Time};

const NIC_IRQ: IrqLine = IrqLine(2);

/// Experiment shape.
#[derive(Clone, Debug)]
pub struct TopoParams {
    /// `(segments, app_nodes)` rows; `app_nodes` must divide evenly
    /// across segments.
    pub rows: Vec<(usize, usize)>,
    /// Simulated horizon per run.
    pub horizon: Time,
    /// Workload seed.
    pub seed: u64,
}

impl TopoParams {
    /// The committed-baseline sweep: up to 8 segments and 1024 nodes.
    pub fn full() -> TopoParams {
        TopoParams {
            rows: vec![(2, 128), (4, 256), (4, 512), (8, 512), (8, 1024)],
            horizon: Time::from_ms(120),
            seed: 0x7070,
        }
    }

    /// CI smoke shape: two small topologies, short horizon.
    pub fn quick() -> TopoParams {
        TopoParams {
            rows: vec![(2, 12), (3, 18)],
            horizon: Time::from_ms(40),
            seed: 0x7070,
        }
    }
}

/// One application node: a periodic sender shipping a wide-addressed
/// frame to `dst`, and the NIC drain driver.
fn app_node(i: usize, dst: NodeId, period_us: u64, rng: &mut SimRng) -> (Kernel, MboxId, MboxId) {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::RmQueue,
        record_trace: false,
        ..KernelConfig::default()
    });
    let p = b.add_process(format!("app{i}"));
    let tx = b.add_mailbox(8);
    let rx = b.add_mailbox(16);
    b.board_mut().add_nic("can", NIC_IRQ);
    b.add_periodic_task(
        p,
        "tx",
        Duration::from_us(period_us),
        Script::periodic(vec![
            Action::Compute(Duration::from_us(rng.int_in(80, 200))),
            Action::SendMbox {
                mbox: tx,
                bytes: 8,
                tag: wide_tag(Some(dst), (i as u32) & 0xFFFF),
            },
        ]),
    );
    b.add_driver_task(
        p,
        "nicdrv",
        Duration::from_ms(2),
        Script::looping(vec![
            Action::RecvMbox(rx),
            Action::Compute(Duration::from_us(30)),
        ]),
    );
    (b.build(), tx, rx)
}

/// Builds one row's topology: a line of `segments` 1 Mbit/s buses
/// joined by default-latency gateways, `nodes` application nodes
/// spread evenly (global ids segment-major, apps before gateway
/// NICs). Three of four nodes address a segment-local peer; every
/// fourth sends to its counterpart on the adjacent segment, crossing
/// exactly one gateway.
///
/// # Panics
///
/// Panics when `nodes` does not divide evenly across `segments`.
pub fn build_topology(segments: usize, nodes: usize, seed: u64, workers: usize) -> Topology {
    assert!(segments >= 2, "a topology row needs at least two segments");
    assert_eq!(
        nodes % segments,
        0,
        "app nodes must divide evenly across segments"
    );
    let per = nodes / segments;
    // Scale send periods with per-segment population so every bus
    // stays comfortably under saturation as rows grow.
    let period_scale = 1 + per as u64 / 16;
    let mut rng = SimRng::seeded(seed);
    let mut t = Topology::new().with_workers(workers);
    let segs: Vec<_> = (0..segments).map(|_| t.add_segment(1_000_000)).collect();
    for s in 0..segments {
        for j in 0..per {
            let i = s * per + j;
            let mut nrng = rng.derive(i as u64);
            let dst = if j % 4 == 3 {
                // Cross-segment: the same slot on the adjacent
                // segment (the line's last segment sends backwards).
                let ns = if s + 1 < segments { s + 1 } else { s - 1 };
                NodeId((ns * per + j) as u32)
            } else {
                NodeId((s * per + (j + 1) % per) as u32)
            };
            let period_us = nrng.int_in(6_000, 12_000) * period_scale;
            let (k, tx, rx) = app_node(i, dst, period_us, &mut nrng);
            t.add_node(
                segs[s],
                format!("app{i}"),
                k,
                tx,
                rx,
                NIC_IRQ,
                (j + 1) as u32,
            );
        }
    }
    for s in 0..segments - 1 {
        t.add_gateway(segs[s], segs[s + 1], GatewayConfig::default());
    }
    t
}

/// One measured configuration. Every field is simulated and
/// deterministic.
#[derive(Clone, Debug)]
pub struct TopoRun {
    pub segments: usize,
    pub nodes: usize,
    pub gateways: usize,
    pub frames_sent: u64,
    pub frames_delivered: u64,
    pub frames_dropped: u64,
    pub frames_lost_gateway: u64,
    pub frames_in_flight: u64,
    /// Frames held inside gateway buffers at the horizon — the carry
    /// term of the cross-segment conservation invariant.
    pub gateway_buffered: u64,
    pub gateway_forwarded: u64,
    pub gateway_overflow_drops: u64,
    pub gateway_peak_depth: u64,
    pub no_route_drops: u64,
    /// Inter-segment barriers the two-level engine placed.
    pub outer_barriers: u64,
    /// Intra-segment barriers, summed over segments.
    pub inner_barriers: u64,
    pub jobs_completed: u64,
    pub deadline_misses: u64,
    pub mean_latency_us: f64,
    /// Bit-for-bit identical statistics at 1, 4, and host-parallelism
    /// outer workers.
    pub deterministic: bool,
}

impl TopoRun {
    /// The conservation invariant, summed across segments.
    pub fn conserved(&self) -> bool {
        self.frames_sent
            == self.frames_delivered
                + self.frames_dropped
                + self.frames_in_flight
                + self.gateway_buffered
    }
}

/// A deterministic fingerprint of everything a run observed; equal
/// fingerprints across worker counts mean the outer engine's
/// threading is invisible.
fn fingerprint(t: &Topology) -> String {
    let mut s = String::new();
    for si in 0..t.segment_count() as u32 {
        s.push_str(&format!(
            "{:?}\n",
            t.segment_stats(emeralds_fieldbus::SegmentId(si))
        ));
    }
    for gi in 0..t.gateway_count() as u32 {
        s.push_str(&format!("{:?}\n", t.gateway_stats(GatewayId(gi))));
    }
    s.push_str(&format!("{:?}\n", t.conservation()));
    s.push_str(&t.metrics().to_json());
    s
}

/// Runs the sweep: each row once per worker count (1, 4, host), with
/// the single-worker run providing the reported numbers and the
/// others the determinism verdict.
pub fn run(params: &TopoParams) -> Vec<TopoRun> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = Vec::new();
    for &(segments, nodes) in &params.rows {
        let mut t = build_topology(segments, nodes, params.seed, 1);
        t.run_until(params.horizon);
        let base_print = fingerprint(&t);
        let mut deterministic = true;
        for workers in [4, host] {
            let mut other = build_topology(segments, nodes, params.seed, workers);
            other.run_until(params.horizon);
            deterministic &= fingerprint(&other) == base_print;
        }
        let total = t.total_stats();
        let m = t.metrics();
        let report = t.conservation();
        let (mut forwarded, mut overflow, mut peak) = (0u64, 0u64, 0u64);
        for gi in 0..t.gateway_count() as u32 {
            let g = t.gateway_stats(GatewayId(gi));
            forwarded += g.forwarded;
            overflow += g.dropped_overflow;
            peak = peak.max(g.peak_depth);
        }
        let stats = t.exec_stats();
        out.push(TopoRun {
            segments,
            nodes,
            gateways: t.gateway_count(),
            frames_sent: total.frames_sent,
            frames_delivered: total.frames_delivered,
            frames_dropped: total.frames_dropped,
            frames_lost_gateway: total.frames_lost_gateway,
            frames_in_flight: total.frames_in_flight,
            gateway_buffered: report.gateway_buffered,
            gateway_forwarded: forwarded,
            gateway_overflow_drops: overflow,
            gateway_peak_depth: peak,
            no_route_drops: t.no_route_drops(),
            outer_barriers: stats.outer.barriers,
            inner_barriers: stats.inner.barriers,
            jobs_completed: m.jobs_completed,
            deadline_misses: m.deadline_misses,
            mean_latency_us: total.mean_latency().map(|d| d.as_us_f64()).unwrap_or(0.0),
            deterministic,
        });
    }
    out
}

/// Renders the sweep as a table.
pub fn render(runs: &[TopoRun]) -> String {
    let mut s = String::new();
    s.push_str(
        "segs  nodes  sent   delivered  dropped  gw-lost  inflight  buffered  forwarded  peak  barriers(out/in)  lat us  det\n",
    );
    for r in runs {
        s.push_str(&format!(
            "{:>4}  {:>5}  {:>5}  {:>9}  {:>7}  {:>7}  {:>8}  {:>8}  {:>9}  {:>4}  {:>7}/{:<8}  {:>6.0}  {}\n",
            r.segments,
            r.nodes,
            r.frames_sent,
            r.frames_delivered,
            r.frames_dropped,
            r.frames_lost_gateway,
            r.frames_in_flight,
            r.gateway_buffered,
            r.gateway_forwarded,
            r.gateway_peak_depth,
            r.outer_barriers,
            r.inner_barriers,
            r.mean_latency_us,
            if r.deterministic { "yes" } else { "NO" },
        ));
    }
    s
}

/// Serializes the sweep as `BENCH_topology.json` — one `runs[]` entry
/// per line, no wall-clock or host fields, bit-for-bit reproducible.
pub fn to_json(params: &TopoParams, runs: &[TopoRun]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("\"experiment\": \"topology\",\n");
    s.push_str(&format!(
        "\"horizon_ms\": {},\n",
        params.horizon.as_ms_f64()
    ));
    s.push_str(&format!("\"seed\": {},\n", params.seed));
    s.push_str("\"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "{{\"segments\": {}, \"nodes\": {}, \"gateways\": {}, \"frames_sent\": {}, \"frames_delivered\": {}, \"frames_dropped\": {}, \"frames_lost_gateway\": {}, \"frames_in_flight\": {}, \"gateway_buffered\": {}, \"gateway_forwarded\": {}, \"gateway_overflow_drops\": {}, \"gateway_peak_depth\": {}, \"no_route_drops\": {}, \"outer_barriers\": {}, \"inner_barriers\": {}, \"jobs_completed\": {}, \"deadline_misses\": {}, \"mean_latency_us\": {:.1}, \"deterministic\": {}}}{}\n",
            r.segments,
            r.nodes,
            r.gateways,
            r.frames_sent,
            r.frames_delivered,
            r.frames_dropped,
            r.frames_lost_gateway,
            r.frames_in_flight,
            r.gateway_buffered,
            r.gateway_forwarded,
            r.gateway_overflow_drops,
            r.gateway_peak_depth,
            r.no_route_drops,
            r.outer_barriers,
            r.inner_barriers,
            r.jobs_completed,
            r.deadline_misses,
            r.mean_latency_us,
            r.deterministic,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n}\n");
    s
}

/// The CI regression gate, on absolute (deterministic) values:
///
/// - cross-segment frame conservation must balance at every row;
/// - every row must be bit-for-bit identical across outer worker
///   counts;
/// - every row must actually exercise the topology: gateways
///   forwarded frames and segments delivered them;
/// - static routing must cover the line: no unroutable captures;
/// - the workload must be schedulable: no deadline misses.
///
/// Returns the per-row verdict lines and whether anything failed.
pub fn gate(runs: &[TopoRun]) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut failed = false;
    for r in runs {
        let mut bad = Vec::new();
        if !r.conserved() {
            bad.push(format!(
                "conservation leak: sent {} != delivered {} + dropped {} + in-flight {} + buffered {}",
                r.frames_sent,
                r.frames_delivered,
                r.frames_dropped,
                r.frames_in_flight,
                r.gateway_buffered
            ));
        }
        if !r.deterministic {
            bad.push("outer worker count changed results".into());
        }
        if r.gateway_forwarded == 0 {
            bad.push("no frame crossed a gateway".into());
        }
        if r.frames_delivered == 0 {
            bad.push("no frame delivered".into());
        }
        if r.no_route_drops > 0 {
            bad.push(format!("{} unroutable captures", r.no_route_drops));
        }
        if r.deadline_misses > 0 {
            bad.push(format!("{} deadline misses", r.deadline_misses));
        }
        failed |= !bad.is_empty();
        lines.push(format!(
            "topo s{} n{}: {}",
            r.segments,
            r.nodes,
            if bad.is_empty() {
                "ok".into()
            } else {
                format!("FAIL ({})", bad.join("; "))
            }
        ));
    }
    (lines, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_runs() -> (TopoParams, Vec<TopoRun>) {
        let params = TopoParams::quick();
        let runs = run(&params);
        (params, runs)
    }

    #[test]
    fn quick_rows_conserve_and_are_deterministic() {
        let (_, runs) = quick_runs();
        for r in &runs {
            assert!(r.conserved(), "{r:?}");
            assert!(r.deterministic, "{r:?}");
            assert!(r.gateway_forwarded > 0, "{r:?}");
            assert!(r.frames_delivered > 0, "{r:?}");
            assert_eq!(r.no_route_drops, 0, "{r:?}");
        }
        let (lines, failed) = gate(&runs);
        assert!(!failed, "{lines:?}");
    }

    #[test]
    fn gate_flags_conservation_leak_and_nondeterminism() {
        let (_, mut runs) = quick_runs();
        runs[0].frames_in_flight += 1;
        let (lines, failed) = gate(&runs);
        assert!(failed, "{lines:?}");

        let (_, mut runs) = quick_runs();
        runs[0].deterministic = false;
        let (_, failed) = gate(&runs);
        assert!(failed);
    }

    #[test]
    fn json_is_reproducible_and_host_free() {
        let (params, runs) = quick_runs();
        let json = to_json(&params, &runs);
        assert!(!json.contains("wall_ms"));
        assert!(!json.contains("host_parallelism"));
        assert!(json.contains("\"experiment\": \"topology\""));
        let runs2 = run(&params);
        assert_eq!(json, to_json(&params, &runs2));
    }
}
