//! End-to-end integration: a complete embedded application on one
//! node, a distributed system over the fieldbus, memory protection,
//! and the footprint report.

use emeralds::core::kernel::{IrqAction, KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::{footprint, SchedPolicy, SemScheme};
use emeralds::fieldbus::{addressed_tag, Network};
use emeralds::hal::{AccessKind, Perms};
use emeralds::sim::{Duration, IrqLine, NodeId, ProcId, Time, TraceEvent};

fn ms(v: u64) -> Duration {
    Duration::from_ms(v)
}

fn us(v: u64) -> Duration {
    Duration::from_us(v)
}

/// A whole control application: IRQ-driven sensor driver, state
/// messages, locked shared object, condition variable, mailboxes,
/// actuator output — every kernel service in one run.
#[test]
fn full_application_exercises_every_service() {
    let mut b = KernelBuilder::new(KernelConfig {
        policy: SchedPolicy::Csd {
            boundaries: vec![2],
        },
        sem_scheme: SemScheme::Emeralds,
        ..KernelConfig::default()
    });
    let app = b.add_process("app");
    let lock = b.add_mutex();
    let cv = b.add_condvar();
    let q = b.add_mailbox(16);
    let line = IrqLine(5);
    let ready_sem = b.add_counting_sem(1);
    b.on_irq(line, IrqAction::ReleaseSem(ready_sem));

    let (sensor, actuator) = {
        let board = b.board_mut();
        let s = board.add_sensor("pressure", Some(line));
        let a = board.add_actuator("valve");
        board.schedule_periodic_samples(s, Time::from_ms(2), ms(4), 50, |k| 100 + k as u32);
        (s, a)
    };

    // Driver: woken by the ISR semaphore, publishes via state message.
    let driver = b.add_driver_task(
        app,
        "drv",
        ms(4),
        Script::looping(vec![
            Action::AcquireSem(ready_sem),
            Action::DevRead(sensor),
            Action::Compute(us(60)),
            Action::StateWrite {
                var: emeralds::sim::StateId(0),
                value: Operand::FromLastRead,
            },
        ]),
    );
    let pressure = b.add_state_msg(driver, 4, 3, &[app]);

    // Controller: reads the state message, updates the shared object,
    // signals the logger, commands the valve.
    let controller = b.add_periodic_task(
        app,
        "ctl",
        ms(8),
        Script::periodic(vec![
            Action::StateRead(pressure),
            Action::AcquireSem(lock),
            Action::Compute(us(500)),
            Action::CondSignal(cv),
            Action::ReleaseSem(lock),
            Action::DevWrite(actuator, Operand::FromLastRead),
            Action::SendMbox {
                mbox: q,
                bytes: 8,
                tag: 0xAB,
            },
        ]),
    );
    // Logger: waits on the condition, then drains the mailbox.
    let logger = b.add_periodic_task(
        app,
        "log",
        ms(40),
        Script::periodic(vec![
            Action::AcquireSem(lock),
            Action::CondWait(cv, lock),
            Action::ReleaseSem(lock),
            // Drain the five messages the 8 ms controller produced
            // over this 40 ms period.
            Action::RecvMbox(q),
            Action::RecvMbox(q),
            Action::RecvMbox(q),
            Action::RecvMbox(q),
            Action::RecvMbox(q),
            Action::Compute(ms(1)),
            Action::ReadClock,
        ]),
    );

    let mut k = b.build();
    k.run_until(Time::from_ms(200));
    assert_eq!(k.total_deadline_misses(), 0);
    assert!(k.tcb(driver).cpu_time > Duration::ZERO);
    assert!(k.tcb(controller).jobs_completed >= 24);
    assert!(k.tcb(logger).jobs_completed >= 4);
    assert!(k.statemsg(pressure).writes() >= 40);
    let log = k.board().actuator_log(actuator);
    assert!(log.len() >= 24, "valve commanded {} times", log.len());
    // The valve eventually echoes a real sample value.
    assert!(log.iter().any(|&(_, v)| v >= 100));
    // Every service left a footprint in the ledger.
    use emeralds::sim::OverheadKind as K;
    for kind in [
        K::Syscall,
        K::Semaphore,
        K::StateMsg,
        K::IpcCopy,
        K::Interrupt,
        K::Timer,
        K::ContextSwitch,
        K::SchedSelect,
    ] {
        assert!(
            k.accounting().total(kind) > Duration::ZERO,
            "{kind} never charged"
        );
    }
}

/// Memory protection: a process that never mapped a state-message
/// region faults on access, and the fault is traced, not fatal.
#[test]
fn mpu_blocks_unmapped_state_messages() {
    let mut b = KernelBuilder::new(KernelConfig::default());
    let owner = b.add_process("owner");
    let intruder = b.add_process("intruder");
    let writer = b.add_periodic_task(
        owner,
        "w",
        ms(10),
        Script::periodic(vec![Action::StateWrite {
            var: emeralds::sim::StateId(0),
            value: Operand::Const(1),
        }]),
    );
    // Map only into the owner's process.
    let var = b.add_state_msg(writer, 8, 3, &[]);
    let snoop = b.add_periodic_task(
        intruder,
        "snoop",
        ms(20),
        Script::periodic(vec![Action::StateRead(var)]),
    );
    let mut k = b.build();
    k.run_until(Time::from_ms(50));
    let faults = k
        .trace()
        .filter(|e| matches!(e, TraceEvent::ProtectionFault { tid, .. } if *tid == snoop))
        .count();
    assert!(faults >= 2, "unmapped reads must fault (got {faults})");
    // The writer is unaffected.
    assert!(k.statemsg(var).writes() >= 4);
    assert_eq!(k.statemsg(var).reads(), 0);
}

/// Direct MPU semantics at the HAL level.
#[test]
fn mpu_region_semantics() {
    let mut b = KernelBuilder::new(KernelConfig::default());
    let p0 = b.add_process("p0");
    let _t = b.add_periodic_task(p0, "t", ms(10), Script::compute_only(us(100)));
    let mut k = b.build();
    let mpu = &mut k.board_mut().mpu;
    let r = mpu.add_region(ProcId(0), 0x8000, 64, Perms::RO);
    assert!(mpu.check(ProcId(0), 0x8000, AccessKind::Read).is_ok());
    assert!(mpu.check(ProcId(0), 0x8000, AccessKind::Write).is_err());
    mpu.share(r, ProcId(1));
    assert!(mpu.check(ProcId(1), 0x803F, AccessKind::Read).is_ok());
    assert!(mpu.check(ProcId(1), 0x8040, AccessKind::Read).is_err());
}

/// Distributed: a 3-node system where a sensor node streams to two
/// consumers; everything meets deadlines and the bus stats add up.
#[test]
fn three_node_fieldbus_system() {
    let nic = IrqLine(2);
    let sensor = {
        let mut b = KernelBuilder::new(KernelConfig {
            policy: SchedPolicy::Csd {
                boundaries: vec![1],
            },
            ..KernelConfig::default()
        });
        let p = b.add_process("sensor");
        let tx = b.add_mailbox(8);
        let rx = b.add_mailbox(8);
        b.board_mut().add_nic("nic", nic);
        b.add_periodic_task(
            p,
            "sample",
            ms(10),
            Script::periodic(vec![
                Action::Compute(us(300)),
                Action::SendMbox {
                    mbox: tx,
                    bytes: 8,
                    tag: addressed_tag(None, 55),
                },
            ]),
        );
        b.add_driver_task(
            p,
            "drain",
            ms(5),
            Script::looping(vec![Action::RecvMbox(rx), Action::Compute(us(20))]),
        );
        (b.build(), tx, rx)
    };
    let consumer = |work_us: u64| {
        let mut b = KernelBuilder::new(KernelConfig {
            policy: SchedPolicy::RmQueue,
            ..KernelConfig::default()
        });
        let p = b.add_process("consumer");
        let tx = b.add_mailbox(8);
        let rx = b.add_mailbox(16);
        b.board_mut().add_nic("nic", nic);
        b.add_driver_task(
            p,
            "rx",
            ms(2),
            Script::looping(vec![Action::RecvMbox(rx), Action::Compute(us(work_us))]),
        );
        b.add_periodic_task(p, "main", ms(20), Script::compute_only(ms(2)));
        (b.build(), tx, rx)
    };
    let mut net = Network::new(2_000_000);
    let (k0, tx0, rx0) = sensor;
    let (k1, tx1, rx1) = consumer(100);
    let (k2, tx2, rx2) = consumer(200);
    net.add_node("sensor", k0, tx0, rx0, nic, 1);
    let c1 = net.add_node("c1", k1, tx1, rx1, nic, 5);
    let c2 = net.add_node("c2", k2, tx2, rx2, nic, 6);
    net.run_until(Time::from_ms(300));
    assert_eq!(net.stats.frames_dropped, 0);
    assert!(
        net.stats.frames_sent >= 29,
        "sent {}",
        net.stats.frames_sent
    );
    // Broadcast to 2 consumers.
    assert!(net.stats.frames_delivered >= 2 * (net.stats.frames_sent - 2));
    for id in [c1, c2] {
        let kern = &net.node(id).kernel;
        assert_eq!(kern.total_deadline_misses(), 0);
        assert_eq!(
            kern.tcb(emeralds::sim::ThreadId(0)).last_read,
            55,
            "{}",
            net.node(id).name
        );
    }
    let _ = NodeId(0);
}

/// The footprint report reproduces the 13 KB claim and the pools
/// reflect real usage.
#[test]
fn footprint_report_after_a_run() {
    let mut b = KernelBuilder::new(KernelConfig::default());
    let p = b.add_process("app");
    let _s = b.add_mutex();
    let _m = b.add_mailbox(2);
    for i in 0..5 {
        b.add_periodic_task(
            p,
            format!("t{i}"),
            ms(10 + i),
            Script::compute_only(us(500)),
        );
    }
    let k = b.build();
    assert_eq!(k.pools().tcbs.high_water(), 5);
    assert_eq!(k.pools().sems.high_water(), 1);
    assert_eq!(k.pools().mailboxes.high_water(), 1);
    let report = footprint::report(k.pools());
    assert!(report.contains("13 KB"));
    assert!(footprint::rom_total() < 20_000);
}
