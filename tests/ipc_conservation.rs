//! Conservation properties of the IPC paths: nothing is lost or
//! duplicated, under randomized producer/consumer workloads and both
//! semaphore schemes.

use emeralds::core::kernel::{KernelBuilder, KernelConfig};
use emeralds::core::script::{Action, Operand, Script};
use emeralds::core::{SchedPolicy, SemScheme};
use emeralds::sim::{Duration, Time, TraceEvent};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Mailbox conservation: every message enters exactly once and
    /// leaves at most once; `sent − received` equals what is still
    /// queued at the horizon.
    #[test]
    fn mailbox_messages_are_conserved(
        prod_period_ms in 4u64..20,
        cons_period_ms in 4u64..20,
        capacity in 1usize..6,
        emeralds_scheme in any::<bool>(),
    ) {
        let scheme = if emeralds_scheme { SemScheme::Emeralds } else { SemScheme::Standard };
        let mut b = KernelBuilder::new(KernelConfig {
            policy: SchedPolicy::RmQueue,
            sem_scheme: scheme,
            ..KernelConfig::default()
        });
        let p = b.add_process("w");
        let mb = b.add_mailbox(capacity);
        b.add_periodic_task(
            p,
            "producer",
            Duration::from_ms(prod_period_ms),
            Script::periodic(vec![
                Action::Compute(Duration::from_us(100)),
                Action::SendMbox { mbox: mb, bytes: 8, tag: 1 },
            ]),
        );
        b.add_periodic_task(
            p,
            "consumer",
            Duration::from_ms(cons_period_ms),
            Script::periodic(vec![
                Action::RecvMbox(mb),
                Action::Compute(Duration::from_us(100)),
            ]),
        );
        let mut k = b.build();
        k.run_until(Time::from_ms(300));
        let mbx = k.mailbox(mb);
        prop_assert!(mbx.received <= mbx.sent);
        prop_assert_eq!(mbx.sent - mbx.received, mbx.len() as u64);
        prop_assert!(mbx.len() <= capacity);
        // The trace agrees with the counters.
        let sends = k.trace().filter(|e| matches!(e, TraceEvent::MboxSend { .. })).count() as u64;
        let recvs = k.trace().filter(|e| matches!(e, TraceEvent::MboxRecv { .. })).count() as u64;
        prop_assert_eq!(sends, mbx.sent);
        prop_assert_eq!(recvs, mbx.received);
    }

    /// State-message monotonicity: the sequence number only grows,
    /// every write bumps it exactly once, and readers always observe
    /// the newest published value.
    #[test]
    fn state_message_sequence_is_monotone_and_fresh(
        writer_period_ms in 2u64..15,
        reader_period_ms in 2u64..15,
        size in 4usize..64,
    ) {
        let mut b = KernelBuilder::new(KernelConfig {
            policy: SchedPolicy::RmQueue,
            ..KernelConfig::default()
        });
        let p = b.add_process("w");
        let writer = b.add_periodic_task(
            p,
            "writer",
            Duration::from_ms(writer_period_ms),
            Script::periodic(vec![
                Action::Compute(Duration::from_us(50)),
                Action::StateWrite {
                    var: emeralds::sim::StateId(0),
                    value: Operand::Const(0xAB),
                },
            ]),
        );
        let var = b.add_state_msg(writer, size, 3, &[p]);
        b.add_periodic_task(
            p,
            "reader",
            Duration::from_ms(reader_period_ms),
            Script::periodic(vec![Action::StateRead(var), Action::Compute(Duration::from_us(50))]),
        );
        let mut k = b.build();
        k.run_until(Time::from_ms(200));
        let v = k.statemsg(var);
        prop_assert_eq!(v.seq, v.writes, "each write bumps seq once");
        // Trace: write sequence numbers strictly increase; every read
        // observes the latest write's sequence at that instant.
        let mut last_write_seq = 0u64;
        for (_, ev) in k.trace().events() {
            match ev {
                TraceEvent::StateWrite { seq, .. } => {
                    prop_assert_eq!(*seq, last_write_seq + 1);
                    last_write_seq = *seq;
                }
                TraceEvent::StateRead { seq, .. } => {
                    prop_assert_eq!(*seq, last_write_seq, "stale read");
                }
                _ => {}
            }
        }
        prop_assert_eq!(v.writes, k.tcb(writer).jobs_completed);
    }

    /// Semaphore conservation: acquisitions and releases pair up, and
    /// at the horizon the lock is held by at most one thread.
    #[test]
    fn semaphore_acquire_release_pairing(
        periods in prop::collection::vec(8u64..40, 2..5),
        emeralds_scheme in any::<bool>(),
    ) {
        let scheme = if emeralds_scheme { SemScheme::Emeralds } else { SemScheme::Standard };
        let mut b = KernelBuilder::new(KernelConfig {
            policy: SchedPolicy::Csd { boundaries: vec![1] },
            sem_scheme: scheme,
            ..KernelConfig::default()
        });
        let p = b.add_process("w");
        let s = b.add_mutex();
        for (i, &pm) in periods.iter().enumerate() {
            b.add_periodic_task(
                p,
                format!("t{i}"),
                Duration::from_ms(pm),
                Script::periodic(vec![
                    Action::AcquireSem(s),
                    Action::Compute(Duration::from_us(300)),
                    Action::ReleaseSem(s),
                ]),
            );
        }
        let mut k = b.build();
        k.run_until(Time::from_ms(400));
        let acqs = k.trace().filter(|e| matches!(e, TraceEvent::SemAcquired { .. })).count();
        let rels = k.trace().filter(|e| matches!(e, TraceEvent::SemReleased { .. })).count();
        // Every release had an acquisition; at most one acquisition is
        // outstanding.
        prop_assert!(acqs >= rels);
        prop_assert!(acqs - rels <= 1, "acqs {acqs} rels {rels}");
        prop_assert_eq!(k.sem(s).available(), acqs == rels);
    }
}
